// Package memory models the backing store (DRAM) behind the LLC: a sparse,
// cacheline-granular content store with access accounting for the energy
// model (Fig. 14 weighs LLC overheads against avoided DRAM accesses).
//
// The store also hosts auxiliary in-memory structures that the paper
// allocates in DRAM — most importantly the Thesaurus base table (§5.2.3)
// — via a separate accounting channel so their traffic can be reported
// independently.
package memory

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"repro/internal/line"
)

// AccessKind distinguishes the DRAM traffic classes we account.
type AccessKind int

// DRAM traffic classes.
const (
	// Fill is a demand read caused by an LLC miss.
	Fill AccessKind = iota
	// Writeback is a dirty eviction from the LLC.
	Writeback
	// BaseTable is traffic to the in-memory base table (base-cache
	// misses and victim writebacks).
	BaseTable
	numKinds
)

// Stats counts DRAM accesses by kind.
type Stats struct {
	Counts [numKinds]uint64
}

// Total returns all DRAM accesses including base-table traffic.
func (s Stats) Total() uint64 {
	var t uint64
	for _, c := range s.Counts {
		t += c
	}
	return t
}

// Demand returns fills + writebacks (the traffic that exists in every
// design, compressed or not).
func (s Stats) Demand() uint64 {
	return s.Counts[Fill] + s.Counts[Writeback]
}

// LatencyModel prices individual DRAM accesses (see package dram). A nil
// model means the simulator's flat memory latency applies.
type LatencyModel interface {
	// Access returns the latency in core cycles of one line access.
	Access(addr line.Addr) float64
}

// pageLines is the store's internal page size in cachelines (4 KiB
// pages). Content is kept as a map of pages rather than a map of lines:
// replays touch every event's line, so the per-access map probe is the
// hottest store operation, and one probe per page instead of per line
// keeps it off the replay profile.
const pageLines = 64

// page holds one aligned run of lines plus a presence bitmap (a line
// reads as zero until first written, as freshly mapped pages do).
// owned marks pages allocated by this package's pool; pages decoded from
// an external artifact slab are not owned and must never be recycled
// (docs/performance.md, "Ownership rules").
type page struct {
	present uint64
	owned   bool
	lines   [pageLines]line.Line
}

// pagePool recycles owned pages across stores. Replays materialize one
// ~4KiB page per 64 working-set lines and drop them all at Release; the
// pool turns that churn into reuse. A mutex-guarded stack (not a
// sync.Pool) keeps the behaviour deterministic and testable; the cap
// bounds idle memory at cap × 4KiB.
var pagePool struct {
	mu   sync.Mutex
	free []*page
}

// pagePoolCap bounds the freelist (8192 pages ≈ 32MiB, one large
// replay's working set).
const pagePoolCap = 8192

// getPage returns a zeroed, owned page from the pool or the heap.
//
//thesaurus:allocok cold pool refill: a first-touch page allocates once, then recycles through the freelist
func getPage() *page {
	pagePool.mu.Lock()
	if n := len(pagePool.free); n > 0 {
		p := pagePool.free[n-1]
		pagePool.free = pagePool.free[:n-1]
		pagePool.mu.Unlock()
		return p
	}
	pagePool.mu.Unlock()
	return &page{owned: true}
}

// putPages recycles owned pages. Each page is zeroed before it is
// offered so a recycled page is indistinguishable from a fresh one.
func putPages(pages []*page) {
	pagePool.mu.Lock()
	for _, p := range pages {
		if len(pagePool.free) >= pagePoolCap {
			break
		}
		*p = page{owned: true}
		pagePool.free = append(pagePool.free, p)
	}
	pagePool.mu.Unlock()
}

// pagePoolSize reports the freelist length (test hook).
func pagePoolSize() int {
	pagePool.mu.Lock()
	defer pagePool.mu.Unlock()
	return len(pagePool.free)
}

// drainPagePool empties the freelist (test hook).
func drainPagePool() {
	pagePool.mu.Lock()
	pagePool.free = nil
	pagePool.mu.Unlock()
}

// Store is a sparse DRAM image at cacheline granularity. Unpopulated
// lines read as zero, as freshly mapped pages do.
type Store struct {
	pages     map[uint64]*page
	populated int
	stats     Stats
	latency   LatencyModel
	// demandCycles accumulates modelled latency of demand traffic.
	demandCycles float64
}

// locate splits addr into its page index and in-page line slot.
func locate(addr line.Addr) (uint64, uint) {
	la := uint64(addr) / line.Size
	return la / pageLines, uint(la % pageLines)
}

// get returns the content of addr's line (zero if never written).
func (s *Store) get(addr line.Addr) line.Line {
	pi, si := locate(addr.LineAddr())
	if p := s.pages[pi]; p != nil {
		return p.lines[si]
	}
	return line.Line{}
}

// set stores data at addr's line, materializing its page on first touch.
func (s *Store) set(addr line.Addr, data line.Line) {
	pi, si := locate(addr.LineAddr())
	p := s.pages[pi]
	if p == nil {
		p = getPage()
		s.pages[pi] = p
	}
	if bit := uint64(1) << si; p.present&bit == 0 {
		p.present |= bit
		s.populated++
	}
	p.lines[si] = data
}

// AttachLatencyModel prices subsequent demand accesses (fills and
// writebacks) with m; the accumulated cycles are exposed via
// DemandCycles.
func (s *Store) AttachLatencyModel(m LatencyModel) { s.latency = m }

// DemandCycles returns the modelled total latency of demand accesses
// since the last ResetStats, and whether a latency model is attached.
func (s *Store) DemandCycles() (float64, bool) {
	return s.demandCycles, s.latency != nil
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{pages: make(map[uint64]*page)}
}

// Read returns the content of the line containing addr and counts one
// access of the given kind.
//
//thesaurus:hotpath
func (s *Store) Read(addr line.Addr, kind AccessKind) line.Line {
	s.stats.Counts[kind]++
	if s.latency != nil && kind != BaseTable {
		s.demandCycles += s.latency.Access(addr)
	}
	return s.get(addr)
}

// Write stores data at addr's line and counts one access of the given kind.
//
//thesaurus:hotpath
func (s *Store) Write(addr line.Addr, data line.Line, kind AccessKind) {
	s.stats.Counts[kind]++
	if s.latency != nil && kind != BaseTable {
		s.demandCycles += s.latency.Access(addr)
	}
	s.set(addr, data)
}

// Peek returns the line content without accounting (used by generators,
// verification, and snapshotting, which model no hardware traffic).
//
//thesaurus:hotpath
func (s *Store) Peek(addr line.Addr) line.Line {
	return s.get(addr)
}

// Poke sets the line content without accounting (pre-population of the
// image before the measured window, mirroring the paper's 100B-instruction
// warmup skip).
//
//thesaurus:hotpath
func (s *Store) Poke(addr line.Addr, data line.Line) {
	s.set(addr, data)
}

// Populated returns the number of distinct lines ever written.
func (s *Store) Populated() int { return s.populated }

// Reserve pre-sizes the page map for a working set of about n lines.
// Replays stage every fill value with Poke, so an unsized map is rebuilt
// and rehashed through a dozen doublings per replay; reserving the known
// working-set size up front pays the allocation once. Existing content
// is preserved.
func (s *Store) Reserve(n int) {
	hint := n / pageLines
	if hint <= len(s.pages) {
		return
	}
	pages := make(map[uint64]*page, hint)
	for pi, p := range s.pages {
		pages[pi] = p
	}
	s.pages = pages
}

// Release drops the content pages, keeping the access statistics. Long
// experiment campaigns call this once a replay is finished and only the
// counters are still needed; subsequent reads observe zero lines.
//
// Pages this store allocated return to the package pool for the next
// replay. Pages it does not own — the slab backing a store decoded from
// an on-disk artifact (LoadPages) — are merely dropped: recycling them
// would hand out storage whose lifetime belongs to the artifact slab
// (or, in a future mmap-backed decode, to the mapping itself).
func (s *Store) Release() {
	// Collect in sorted page-index order so the pool's stack order (and
	// therefore which physical page a later store receives) never depends
	// on map iteration order. Recycled pages are zeroed, so this is pure
	// hygiene — but determinism hygiene is this repository's contract.
	pis := make([]uint64, 0, len(s.pages))
	for pi := range s.pages {
		pis = append(pis, pi)
	}
	sort.Slice(pis, func(i, j int) bool { return pis[i] < pis[j] })
	recycle := make([]*page, 0, len(pis))
	for _, pi := range pis {
		if p := s.pages[pi]; p.owned {
			recycle = append(recycle, p)
		}
	}
	putPages(recycle)
	s.pages = make(map[uint64]*page)
	s.populated = 0
}

// pageBytes is the raw payload size of one serialized page.
const pageBytes = pageLines * line.Size

// AppendPages serializes the store's content pages onto dst and returns
// the extended slice. This is the memory.Store section of the artifact
// codec (internal/artifact): a page-count uvarint, then each populated
// page in ascending page-index order as a delta-encoded page index, the
// 8-byte presence bitmap, and the raw 4KiB of line data. Statistics and
// the latency model are deliberately not part of the image.
func (s *Store) AppendPages(dst []byte) []byte {
	pis := make([]uint64, 0, len(s.pages))
	for pi := range s.pages {
		pis = append(pis, pi)
	}
	sort.Slice(pis, func(i, j int) bool { return pis[i] < pis[j] })
	dst = binary.AppendUvarint(dst, uint64(len(pis)))
	prev := uint64(0)
	for _, pi := range pis {
		// First page encodes its absolute index (prev starts at 0);
		// strictly ascending order makes every later delta >= 1.
		dst = binary.AppendUvarint(dst, pi-prev)
		p := s.pages[pi]
		dst = binary.LittleEndian.AppendUint64(dst, p.present)
		for li := range p.lines {
			dst = append(dst, p.lines[li][:]...)
		}
		prev = pi
	}
	return dst
}

// LoadPages decodes an AppendPages image into s, which must be empty,
// and returns the unconsumed remainder of data. All decoded pages share
// one slab owned by the decoded image, not by the page pool: a
// subsequent Release drops them without recycling (see Release).
func (s *Store) LoadPages(data []byte) (rest []byte, err error) {
	if len(s.pages) != 0 {
		return nil, fmt.Errorf("memory: LoadPages into non-empty store")
	}
	n, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, fmt.Errorf("memory: corrupt page count")
	}
	data = data[k:]
	const maxPages = 1 << 28 // 1TiB of pages: far beyond any real image
	if n > maxPages {
		return nil, fmt.Errorf("memory: implausible page count %d", n)
	}
	if uint64(len(data)) < n*(1+8+pageBytes) {
		// Cheap lower bound (each page needs ≥ 1 varint byte + bitmap +
		// payload) so a corrupt count cannot trigger a huge allocation.
		return nil, fmt.Errorf("memory: truncated page section (%d pages, %d bytes)", n, len(data))
	}
	slab := make([]page, n)
	pi := uint64(0)
	for i := uint64(0); i < n; i++ {
		delta, k := binary.Uvarint(data)
		if k <= 0 {
			return nil, fmt.Errorf("memory: corrupt page index at page %d", i)
		}
		data = data[k:]
		if i == 0 {
			pi = delta
		} else {
			if delta == 0 {
				return nil, fmt.Errorf("memory: page indices not strictly ascending at page %d", i)
			}
			next := pi + delta
			if next < pi {
				return nil, fmt.Errorf("memory: page index overflow at page %d", i)
			}
			pi = next
		}
		if len(data) < 8+pageBytes {
			return nil, fmt.Errorf("memory: truncated page %d", i)
		}
		p := &slab[i]
		p.present = binary.LittleEndian.Uint64(data)
		data = data[8:]
		for li := range p.lines {
			copy(p.lines[li][:], data[:line.Size])
			data = data[line.Size:]
		}
		s.pages[pi] = p
		s.populated += bits.OnesCount64(p.present)
	}
	return data, nil
}

// PagesEqual reports whether two stores hold identical content images
// (same populated pages, presence bitmaps, and line data). Statistics
// are not compared.
func PagesEqual(a, b *Store) bool {
	if len(a.pages) != len(b.pages) {
		return false
	}
	for pi, pa := range a.pages {
		pb, ok := b.pages[pi]
		if !ok || pa.present != pb.present || pa.lines != pb.lines {
			return false
		}
	}
	return true
}

// Stats returns a copy of the access counters.
func (s *Store) Stats() Stats { return s.stats }

// ResetStats zeroes the access counters (e.g. after cache warmup).
func (s *Store) ResetStats() {
	s.stats = Stats{}
	s.demandCycles = 0
}
