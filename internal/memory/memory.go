// Package memory models the backing store (DRAM) behind the LLC: a sparse,
// cacheline-granular content store with access accounting for the energy
// model (Fig. 14 weighs LLC overheads against avoided DRAM accesses).
//
// The store also hosts auxiliary in-memory structures that the paper
// allocates in DRAM — most importantly the Thesaurus base table (§5.2.3)
// — via a separate accounting channel so their traffic can be reported
// independently.
package memory

import "repro/internal/line"

// AccessKind distinguishes the DRAM traffic classes we account.
type AccessKind int

// DRAM traffic classes.
const (
	// Fill is a demand read caused by an LLC miss.
	Fill AccessKind = iota
	// Writeback is a dirty eviction from the LLC.
	Writeback
	// BaseTable is traffic to the in-memory base table (base-cache
	// misses and victim writebacks).
	BaseTable
	numKinds
)

// Stats counts DRAM accesses by kind.
type Stats struct {
	Counts [numKinds]uint64
}

// Total returns all DRAM accesses including base-table traffic.
func (s Stats) Total() uint64 {
	var t uint64
	for _, c := range s.Counts {
		t += c
	}
	return t
}

// Demand returns fills + writebacks (the traffic that exists in every
// design, compressed or not).
func (s Stats) Demand() uint64 {
	return s.Counts[Fill] + s.Counts[Writeback]
}

// LatencyModel prices individual DRAM accesses (see package dram). A nil
// model means the simulator's flat memory latency applies.
type LatencyModel interface {
	// Access returns the latency in core cycles of one line access.
	Access(addr line.Addr) float64
}

// Store is a sparse DRAM image at cacheline granularity. Unpopulated
// lines read as zero, as freshly mapped pages do.
type Store struct {
	lines   map[line.Addr]line.Line
	stats   Stats
	latency LatencyModel
	// demandCycles accumulates modelled latency of demand traffic.
	demandCycles float64
}

// AttachLatencyModel prices subsequent demand accesses (fills and
// writebacks) with m; the accumulated cycles are exposed via
// DemandCycles.
func (s *Store) AttachLatencyModel(m LatencyModel) { s.latency = m }

// DemandCycles returns the modelled total latency of demand accesses
// since the last ResetStats, and whether a latency model is attached.
func (s *Store) DemandCycles() (float64, bool) {
	return s.demandCycles, s.latency != nil
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{lines: make(map[line.Addr]line.Line)}
}

// Read returns the content of the line containing addr and counts one
// access of the given kind.
func (s *Store) Read(addr line.Addr, kind AccessKind) line.Line {
	s.stats.Counts[kind]++
	if s.latency != nil && kind != BaseTable {
		s.demandCycles += s.latency.Access(addr)
	}
	return s.lines[addr.LineAddr()]
}

// Write stores data at addr's line and counts one access of the given kind.
func (s *Store) Write(addr line.Addr, data line.Line, kind AccessKind) {
	s.stats.Counts[kind]++
	if s.latency != nil && kind != BaseTable {
		s.demandCycles += s.latency.Access(addr)
	}
	s.lines[addr.LineAddr()] = data
}

// Peek returns the line content without accounting (used by generators,
// verification, and snapshotting, which model no hardware traffic).
func (s *Store) Peek(addr line.Addr) line.Line {
	return s.lines[addr.LineAddr()]
}

// Poke sets the line content without accounting (pre-population of the
// image before the measured window, mirroring the paper's 100B-instruction
// warmup skip).
func (s *Store) Poke(addr line.Addr, data line.Line) {
	s.lines[addr.LineAddr()] = data
}

// Populated returns the number of distinct lines ever written.
func (s *Store) Populated() int { return len(s.lines) }

// Release drops the content map, keeping the access statistics. Long
// experiment campaigns call this once a replay is finished and only the
// counters are still needed; subsequent reads observe zero lines.
func (s *Store) Release() {
	s.lines = make(map[line.Addr]line.Line)
}

// Stats returns a copy of the access counters.
func (s *Store) Stats() Stats { return s.stats }

// ResetStats zeroes the access counters (e.g. after cache warmup).
func (s *Store) ResetStats() {
	s.stats = Stats{}
	s.demandCycles = 0
}
