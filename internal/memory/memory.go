// Package memory models the backing store (DRAM) behind the LLC: a sparse,
// cacheline-granular content store with access accounting for the energy
// model (Fig. 14 weighs LLC overheads against avoided DRAM accesses).
//
// The store also hosts auxiliary in-memory structures that the paper
// allocates in DRAM — most importantly the Thesaurus base table (§5.2.3)
// — via a separate accounting channel so their traffic can be reported
// independently.
package memory

import "repro/internal/line"

// AccessKind distinguishes the DRAM traffic classes we account.
type AccessKind int

// DRAM traffic classes.
const (
	// Fill is a demand read caused by an LLC miss.
	Fill AccessKind = iota
	// Writeback is a dirty eviction from the LLC.
	Writeback
	// BaseTable is traffic to the in-memory base table (base-cache
	// misses and victim writebacks).
	BaseTable
	numKinds
)

// Stats counts DRAM accesses by kind.
type Stats struct {
	Counts [numKinds]uint64
}

// Total returns all DRAM accesses including base-table traffic.
func (s Stats) Total() uint64 {
	var t uint64
	for _, c := range s.Counts {
		t += c
	}
	return t
}

// Demand returns fills + writebacks (the traffic that exists in every
// design, compressed or not).
func (s Stats) Demand() uint64 {
	return s.Counts[Fill] + s.Counts[Writeback]
}

// LatencyModel prices individual DRAM accesses (see package dram). A nil
// model means the simulator's flat memory latency applies.
type LatencyModel interface {
	// Access returns the latency in core cycles of one line access.
	Access(addr line.Addr) float64
}

// pageLines is the store's internal page size in cachelines (4 KiB
// pages). Content is kept as a map of pages rather than a map of lines:
// replays touch every event's line, so the per-access map probe is the
// hottest store operation, and one probe per page instead of per line
// keeps it off the replay profile.
const pageLines = 64

// page holds one aligned run of lines plus a presence bitmap (a line
// reads as zero until first written, as freshly mapped pages do).
type page struct {
	present uint64
	lines   [pageLines]line.Line
}

// Store is a sparse DRAM image at cacheline granularity. Unpopulated
// lines read as zero, as freshly mapped pages do.
type Store struct {
	pages     map[uint64]*page
	populated int
	stats     Stats
	latency   LatencyModel
	// demandCycles accumulates modelled latency of demand traffic.
	demandCycles float64
}

// locate splits addr into its page index and in-page line slot.
func locate(addr line.Addr) (uint64, uint) {
	la := uint64(addr) / line.Size
	return la / pageLines, uint(la % pageLines)
}

// get returns the content of addr's line (zero if never written).
func (s *Store) get(addr line.Addr) line.Line {
	pi, si := locate(addr.LineAddr())
	if p := s.pages[pi]; p != nil {
		return p.lines[si]
	}
	return line.Line{}
}

// set stores data at addr's line, materializing its page on first touch.
func (s *Store) set(addr line.Addr, data line.Line) {
	pi, si := locate(addr.LineAddr())
	p := s.pages[pi]
	if p == nil {
		p = &page{}
		s.pages[pi] = p
	}
	if bit := uint64(1) << si; p.present&bit == 0 {
		p.present |= bit
		s.populated++
	}
	p.lines[si] = data
}

// AttachLatencyModel prices subsequent demand accesses (fills and
// writebacks) with m; the accumulated cycles are exposed via
// DemandCycles.
func (s *Store) AttachLatencyModel(m LatencyModel) { s.latency = m }

// DemandCycles returns the modelled total latency of demand accesses
// since the last ResetStats, and whether a latency model is attached.
func (s *Store) DemandCycles() (float64, bool) {
	return s.demandCycles, s.latency != nil
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{pages: make(map[uint64]*page)}
}

// Read returns the content of the line containing addr and counts one
// access of the given kind.
func (s *Store) Read(addr line.Addr, kind AccessKind) line.Line {
	s.stats.Counts[kind]++
	if s.latency != nil && kind != BaseTable {
		s.demandCycles += s.latency.Access(addr)
	}
	return s.get(addr)
}

// Write stores data at addr's line and counts one access of the given kind.
func (s *Store) Write(addr line.Addr, data line.Line, kind AccessKind) {
	s.stats.Counts[kind]++
	if s.latency != nil && kind != BaseTable {
		s.demandCycles += s.latency.Access(addr)
	}
	s.set(addr, data)
}

// Peek returns the line content without accounting (used by generators,
// verification, and snapshotting, which model no hardware traffic).
func (s *Store) Peek(addr line.Addr) line.Line {
	return s.get(addr)
}

// Poke sets the line content without accounting (pre-population of the
// image before the measured window, mirroring the paper's 100B-instruction
// warmup skip).
func (s *Store) Poke(addr line.Addr, data line.Line) {
	s.set(addr, data)
}

// Populated returns the number of distinct lines ever written.
func (s *Store) Populated() int { return s.populated }

// Reserve pre-sizes the page map for a working set of about n lines.
// Replays stage every fill value with Poke, so an unsized map is rebuilt
// and rehashed through a dozen doublings per replay; reserving the known
// working-set size up front pays the allocation once. Existing content
// is preserved.
func (s *Store) Reserve(n int) {
	hint := n / pageLines
	if hint <= len(s.pages) {
		return
	}
	pages := make(map[uint64]*page, hint)
	for pi, p := range s.pages {
		pages[pi] = p
	}
	s.pages = pages
}

// Release drops the content pages, keeping the access statistics. Long
// experiment campaigns call this once a replay is finished and only the
// counters are still needed; subsequent reads observe zero lines.
func (s *Store) Release() {
	s.pages = make(map[uint64]*page)
	s.populated = 0
}

// Stats returns a copy of the access counters.
func (s *Store) Stats() Stats { return s.stats }

// ResetStats zeroes the access counters (e.g. after cache warmup).
func (s *Store) ResetStats() {
	s.stats = Stats{}
	s.demandCycles = 0
}
