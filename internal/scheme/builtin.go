// Built-in design registrations. Registration order is report order:
// the first six entries reproduce the pre-registry design list (and its
// report columns) exactly; CPack and DISH append after it.
package scheme

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/bdi"
	"repro/internal/bdicache"
	"repro/internal/cpack"
	"repro/internal/dedupcache"
	"repro/internal/diffenc"
	"repro/internal/dish"
	"repro/internal/ideal"
	"repro/internal/line"
	"repro/internal/llc"
	"repro/internal/lsh"
	"repro/internal/memory"
	"repro/internal/stats"
	"repro/internal/thesaurus"
	"repro/internal/uncomp"
)

// Wire tags of the built-in codecs. Tag 0 is the generic nil-Extra tag
// written by the artifact codec itself; these continue the numbering the
// pre-registry codec used, and new tags require an
// artifact.RunOutputVersion bump.
const (
	tagUncomp    = 1
	tagBDI       = 2
	tagDedup     = 3
	tagThesaurus = 4
	tagCPack     = 5
	tagDISH      = 6
)

// Decode-size bounds, mirroring the artifact codec's limits: a line pool
// larger than maxLinePool (2^30 lines = 64GiB) or a diff series longer
// than maxDiffSeries (the recording event bound) is corruption, not data.
const (
	maxLinePool   = 1 << 30
	maxDiffSeries = 1 << 32
)

// Canonical append helpers shared by the codec hooks; they mirror the
// artifact codec's primitives bit for bit (counters as uvarints, floats
// as fixed 8-byte IEEE patterns, bools as one strict byte).
func appendU(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }

func appendF64(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// Key-fragment helpers for AppendConfigKey hooks: fixed 8-byte values
// and length-prefixed strings, matching the artifact key primitives.
func keyU64(dst []byte, vs ...uint64) []byte {
	for _, v := range vs {
		dst = binary.LittleEndian.AppendUint64(dst, v)
	}
	return dst
}

func keyString(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(s)))
	return append(dst, s...)
}

// uncompCodec persists *uncomp.Snapshot; Baseline and 2x Baseline share
// it (one snapshot type, one tag).
var uncompCodec = &ExtraCodec{
	Tag: tagUncomp,
	Matches: func(x llc.ExtraSnapshot) bool {
		_, ok := x.(*uncomp.Snapshot)
		return ok
	},
	Encode: func(dst []byte, x llc.ExtraSnapshot) []byte {
		s := x.(*uncomp.Snapshot)
		dst = appendBool(dst, s.Lines != nil)
		dst = appendU(dst, uint64(len(s.Lines)))
		for i := range s.Lines {
			dst = append(dst, s.Lines[i][:]...)
		}
		return dst
	},
	Decode: func(d Decoder) llc.ExtraSnapshot {
		x := &uncomp.Snapshot{}
		present := d.Bool("uncomp lines presence")
		n := d.Count("uncomp line count", maxLinePool)
		if d.Err() == nil && !present && n != 0 {
			d.Fail("absent uncomp lines with count %d", n)
		}
		if present && d.Err() == nil {
			raw := d.Bytes("uncomp lines", n*line.Size)
			if d.Err() == nil {
				x.Lines = make([]line.Line, n)
				for i := range x.Lines {
					copy(x.Lines[i][:], raw[i*line.Size:])
				}
			}
		}
		return x
	},
	Equal: func(a, b llc.ExtraSnapshot) bool {
		x, y := a.(*uncomp.Snapshot), b.(*uncomp.Snapshot)
		if (x.Lines == nil) != (y.Lines == nil) || len(x.Lines) != len(y.Lines) {
			return false
		}
		for i := range x.Lines {
			if x.Lines[i] != y.Lines[i] {
				return false
			}
		}
		return true
	},
}

var bdiCodec = &ExtraCodec{
	Tag: tagBDI,
	Matches: func(x llc.ExtraSnapshot) bool {
		_, ok := x.(*bdicache.Snapshot)
		return ok
	},
	Encode: func(dst []byte, x llc.ExtraSnapshot) []byte {
		s := x.(*bdicache.Snapshot)
		dst = appendU(dst, s.Extra.Insertions)
		dst = appendU(dst, s.Extra.Compressed)
		dst = appendU(dst, s.Extra.SpaceEvictions)
		dst = appendBool(dst, s.Extra.ByKind != nil)
		kinds := make([]int, 0, len(s.Extra.ByKind))
		for k := range s.Extra.ByKind {
			kinds = append(kinds, int(k))
		}
		sort.Ints(kinds)
		dst = appendU(dst, uint64(len(kinds)))
		for _, k := range kinds {
			dst = appendU(dst, uint64(k))
			dst = appendU(dst, s.Extra.ByKind[bdi.Kind(k)])
		}
		return dst
	},
	Decode: func(d Decoder) llc.ExtraSnapshot {
		x := &bdicache.Snapshot{}
		x.Extra.Insertions = d.Uvarint("bdi insertions")
		x.Extra.Compressed = d.Uvarint("bdi compressed")
		x.Extra.SpaceEvictions = d.Uvarint("bdi space evictions")
		present := d.Bool("bdi bykind presence")
		n := d.Count("bdi kind count", 256)
		if d.Err() == nil && !present && n != 0 {
			d.Fail("absent bdi histogram with %d kinds", n)
		}
		if present && d.Err() == nil {
			x.Extra.ByKind = make(map[bdi.Kind]uint64, n)
			prev := -1
			for i := 0; i < n; i++ {
				k := int(d.Uvarint("bdi kind"))
				c := d.Uvarint("bdi kind count")
				if d.Err() != nil {
					return x
				}
				// Strictly ascending kinds keep the encoding canonical
				// (decode∘encode identity) and the map keys unique; the
				// range bound is the Kind representation (uint8), not the
				// current enum, so new kinds don't invalidate old files.
				if k <= prev || k > 0xff {
					d.Fail("bdi kind %d out of order or range", k)
					return x
				}
				prev = k
				x.Extra.ByKind[bdi.Kind(k)] = c
			}
		}
		return x
	},
	Equal: func(a, b llc.ExtraSnapshot) bool {
		x, y := a.(*bdicache.Snapshot), b.(*bdicache.Snapshot)
		if x.Extra.Insertions != y.Extra.Insertions ||
			x.Extra.Compressed != y.Extra.Compressed ||
			x.Extra.SpaceEvictions != y.Extra.SpaceEvictions ||
			(x.Extra.ByKind == nil) != (y.Extra.ByKind == nil) ||
			len(x.Extra.ByKind) != len(y.Extra.ByKind) {
			return false
		}
		for k, v := range x.Extra.ByKind {
			if y.Extra.ByKind[k] != v {
				return false
			}
		}
		return true
	},
}

var dedupCodec = &ExtraCodec{
	Tag: tagDedup,
	Matches: func(x llc.ExtraSnapshot) bool {
		_, ok := x.(*dedupcache.Snapshot)
		return ok
	},
	Encode: func(dst []byte, x llc.ExtraSnapshot) []byte {
		s := x.(*dedupcache.Snapshot)
		dst = appendU(dst, s.Extra.Insertions)
		dst = appendU(dst, s.Extra.Deduped)
		dst = appendU(dst, s.Extra.FalseMatches)
		return appendU(dst, s.Extra.ListEvictions)
	},
	Decode: func(d Decoder) llc.ExtraSnapshot {
		x := &dedupcache.Snapshot{}
		x.Extra.Insertions = d.Uvarint("dedup insertions")
		x.Extra.Deduped = d.Uvarint("dedup deduped")
		x.Extra.FalseMatches = d.Uvarint("dedup false matches")
		x.Extra.ListEvictions = d.Uvarint("dedup list evictions")
		return x
	},
	Equal: func(a, b llc.ExtraSnapshot) bool {
		x, y := a.(*dedupcache.Snapshot), b.(*dedupcache.Snapshot)
		return x.Extra == y.Extra
	},
}

var thesaurusCodec = &ExtraCodec{
	Tag: tagThesaurus,
	Matches: func(x llc.ExtraSnapshot) bool {
		_, ok := x.(*thesaurus.Snapshot)
		return ok
	},
	Encode: func(dst []byte, x llc.ExtraSnapshot) []byte {
		s := x.(*thesaurus.Snapshot)
		c := &s.Cfg
		dst = appendU(dst, uint64(c.TagEntries))
		dst = appendU(dst, uint64(c.TagWays))
		dst = appendU(dst, uint64(c.DataSets))
		dst = appendU(dst, uint64(c.SegmentsPerSet))
		dst = appendU(dst, uint64(c.LSH.Bits))
		dst = appendU(dst, uint64(c.LSH.NonZeros))
		dst = appendU(dst, c.LSH.Seed)
		dst = appendU(dst, uint64(c.BaseCacheSets))
		dst = appendU(dst, uint64(c.BaseCacheWays))
		dst = appendU(dst, uint64(c.VictimCandidates))
		dst = appendU(dst, c.Seed)
		dst = appendU(dst, uint64(c.DiffSeriesWindow))
		dst = appendBool(dst, c.BaseCachePlainLRU)
		dst = appendBool(dst, c.IntraLineFallback)
		dst = appendU(dst, uint64(c.AdaptiveEpoch))
		dst = appendU(dst, uint64(c.WriteBufferDepth))

		e := &s.Extra
		dst = appendU(dst, e.Insertions)
		dst = appendU(dst, e.Reencodes)
		dst = appendU(dst, e.Placements)
		dst = appendU(dst, uint64(len(e.ByFormat)))
		for _, v := range e.ByFormat {
			dst = appendU(dst, v)
		}
		dst = appendU(dst, e.Compressible)
		dst = appendU(dst, e.RawDueToBaseMiss)
		dst = appendU(dst, e.DiffBytesSum)
		dst = appendU(dst, e.DiffCount)
		dst = appendU(dst, e.DataEvictions)

		dst = appendU(dst, s.Adaptive.Epochs)
		dst = appendU(dst, s.Adaptive.DisabledEpochs)
		dst = appendU(dst, s.Adaptive.DisabledPlacements)

		dst = appendBool(dst, s.DiffSeries != nil)
		dst = appendU(dst, uint64(len(s.DiffSeries)))
		for _, f := range s.DiffSeries {
			dst = appendF64(dst, f)
		}

		dst = appendU(dst, s.BaseCache.ReadPath.Hits)
		dst = appendU(dst, s.BaseCache.ReadPath.Total)
		dst = appendU(dst, s.BaseCache.InsertPath.Hits)
		dst = appendU(dst, s.BaseCache.InsertPath.Total)
		dst = appendU(dst, uint64(s.BaseCache.Entries))
		dst = appendU(dst, uint64(s.BaseCache.StorageBytes))
		dst = appendU(dst, uint64(s.LiveClusters))
		return appendU(dst, uint64(s.ValidClusters))
	},
	Decode: func(d Decoder) llc.ExtraSnapshot {
		s := &thesaurus.Snapshot{}
		c := &s.Cfg
		c.TagEntries = int(d.Uvarint("cfg tag entries"))
		c.TagWays = int(d.Uvarint("cfg tag ways"))
		c.DataSets = int(d.Uvarint("cfg data sets"))
		c.SegmentsPerSet = int(d.Uvarint("cfg segments per set"))
		c.LSH = lsh.Config{
			Bits:     int(d.Uvarint("cfg lsh bits")),
			NonZeros: int(d.Uvarint("cfg lsh nonzeros")),
			Seed:     d.Uvarint("cfg lsh seed"),
		}
		c.BaseCacheSets = int(d.Uvarint("cfg base sets"))
		c.BaseCacheWays = int(d.Uvarint("cfg base ways"))
		c.VictimCandidates = int(d.Uvarint("cfg victim candidates"))
		c.Seed = d.Uvarint("cfg seed")
		c.DiffSeriesWindow = int(d.Uvarint("cfg diff window"))
		c.BaseCachePlainLRU = d.Bool("cfg plain lru")
		c.IntraLineFallback = d.Bool("cfg intra fallback")
		c.AdaptiveEpoch = int(d.Uvarint("cfg adaptive epoch"))
		c.WriteBufferDepth = int(d.Uvarint("cfg write buffer depth"))

		e := &s.Extra
		e.Insertions = d.Uvarint("extra insertions")
		e.Reencodes = d.Uvarint("extra reencodes")
		e.Placements = d.Uvarint("extra placements")
		if n := d.Count("format count", uint64(len(e.ByFormat))); d.Err() == nil && n != len(e.ByFormat) {
			d.Fail("format count %d, codec has %d", n, diffenc.NumFormats)
		}
		for i := range e.ByFormat {
			e.ByFormat[i] = d.Uvarint("format counter")
		}
		e.Compressible = d.Uvarint("extra compressible")
		e.RawDueToBaseMiss = d.Uvarint("extra raw due to base miss")
		e.DiffBytesSum = d.Uvarint("extra diff bytes sum")
		e.DiffCount = d.Uvarint("extra diff count")
		e.DataEvictions = d.Uvarint("extra data evictions")

		s.Adaptive.Epochs = d.Uvarint("adaptive epochs")
		s.Adaptive.DisabledEpochs = d.Uvarint("adaptive disabled epochs")
		s.Adaptive.DisabledPlacements = d.Uvarint("adaptive disabled placements")

		present := d.Bool("diff series presence")
		n := d.Count("diff series length", maxDiffSeries)
		if d.Err() == nil && !present && n != 0 {
			d.Fail("absent diff series with length %d", n)
		}
		if present && d.Err() == nil {
			raw := d.Bytes("diff series", n*8)
			if d.Err() == nil {
				s.DiffSeries = make([]float64, n)
				for i := range s.DiffSeries {
					s.DiffSeries[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
				}
			}
		}

		s.BaseCache = thesaurus.BaseCacheSnapshot{
			ReadPath:     stats.Counter{Hits: d.Uvarint("base read hits"), Total: d.Uvarint("base read total")},
			InsertPath:   stats.Counter{Hits: d.Uvarint("base insert hits"), Total: d.Uvarint("base insert total")},
			Entries:      int(d.Uvarint("base entries")),
			StorageBytes: int(d.Uvarint("base storage bytes")),
		}
		s.LiveClusters = int(d.Uvarint("live clusters"))
		s.ValidClusters = int(d.Uvarint("valid clusters"))
		return s
	},
	Equal: func(a, b llc.ExtraSnapshot) bool {
		x, y := a.(*thesaurus.Snapshot), b.(*thesaurus.Snapshot)
		if x.Cfg != y.Cfg || x.Extra != y.Extra || x.Adaptive != y.Adaptive ||
			x.BaseCache != y.BaseCache || x.LiveClusters != y.LiveClusters ||
			x.ValidClusters != y.ValidClusters ||
			(x.DiffSeries == nil) != (y.DiffSeries == nil) ||
			len(x.DiffSeries) != len(y.DiffSeries) {
			return false
		}
		for i := range x.DiffSeries {
			if math.Float64bits(x.DiffSeries[i]) != math.Float64bits(y.DiffSeries[i]) {
				return false
			}
		}
		return true
	},
}

var cpackCodec = &ExtraCodec{
	Tag: tagCPack,
	Matches: func(x llc.ExtraSnapshot) bool {
		_, ok := x.(*cpack.Snapshot)
		return ok
	},
	Encode: func(dst []byte, x llc.ExtraSnapshot) []byte {
		s := x.(*cpack.Snapshot)
		dst = appendU(dst, s.Extra.Insertions)
		dst = appendU(dst, s.Extra.Compressed)
		dst = appendU(dst, s.Extra.SpaceEvictions)
		dst = appendU(dst, uint64(len(s.Extra.ByPattern)))
		for _, v := range s.Extra.ByPattern {
			dst = appendU(dst, v)
		}
		return dst
	},
	Decode: func(d Decoder) llc.ExtraSnapshot {
		x := &cpack.Snapshot{}
		x.Extra.Insertions = d.Uvarint("cpack insertions")
		x.Extra.Compressed = d.Uvarint("cpack compressed")
		x.Extra.SpaceEvictions = d.Uvarint("cpack space evictions")
		if n := d.Count("cpack pattern count", uint64(len(x.Extra.ByPattern))); d.Err() == nil && n != len(x.Extra.ByPattern) {
			d.Fail("cpack pattern count %d, codec has %d", n, cpack.NumPatterns)
		}
		for i := range x.Extra.ByPattern {
			x.Extra.ByPattern[i] = d.Uvarint("cpack pattern counter")
		}
		return x
	},
	Equal: func(a, b llc.ExtraSnapshot) bool {
		x, y := a.(*cpack.Snapshot), b.(*cpack.Snapshot)
		return x.Extra == y.Extra
	},
}

var dishCodec = &ExtraCodec{
	Tag: tagDISH,
	Matches: func(x llc.ExtraSnapshot) bool {
		_, ok := x.(*dish.Snapshot)
		return ok
	},
	Encode: func(dst []byte, x llc.ExtraSnapshot) []byte {
		s := x.(*dish.Snapshot)
		dst = appendU(dst, s.Extra.Insertions)
		dst = appendU(dst, s.Extra.Scheme1Fills)
		dst = appendU(dst, s.Extra.Scheme2Fills)
		dst = appendU(dst, s.Extra.UncompressedFills)
		dst = appendU(dst, s.Extra.OTFSelections)
		return appendU(dst, s.Extra.SpaceEvictions)
	},
	Decode: func(d Decoder) llc.ExtraSnapshot {
		x := &dish.Snapshot{}
		x.Extra.Insertions = d.Uvarint("dish insertions")
		x.Extra.Scheme1Fills = d.Uvarint("dish scheme1 fills")
		x.Extra.Scheme2Fills = d.Uvarint("dish scheme2 fills")
		x.Extra.UncompressedFills = d.Uvarint("dish uncompressed fills")
		x.Extra.OTFSelections = d.Uvarint("dish otf selections")
		x.Extra.SpaceEvictions = d.Uvarint("dish space evictions")
		return x
	},
	Equal: func(a, b llc.ExtraSnapshot) bool {
		x, y := a.(*dish.Snapshot), b.(*dish.Snapshot)
		return x.Extra == y.Extra
	},
}

func init() {
	Register(Scheme{
		Name: "Baseline",
		Build: func(mem *memory.Store) (llc.Cache, error) {
			return uncomp.New("Baseline", uncomp.DefaultConfig(), mem), nil
		},
		Codec: uncompCodec,
		AppendConfigKey: func(dst []byte) []byte {
			cfg := uncomp.DefaultConfig()
			dst = keyU64(dst, uint64(cfg.SizeBytes), uint64(cfg.Ways))
			return keyString(dst, cfg.Policy)
		},
	})
	Register(Scheme{
		Name: "Dedup",
		Build: func(mem *memory.Store) (llc.Cache, error) {
			return dedupcache.New(dedupcache.DefaultConfig(), mem)
		},
		Codec: dedupCodec,
		AppendConfigKey: func(dst []byte) []byte {
			cfg := dedupcache.DefaultConfig()
			return keyU64(dst, uint64(cfg.TagEntries), uint64(cfg.TagWays),
				uint64(cfg.DataEntries), uint64(cfg.HashEntries))
		},
	})
	Register(Scheme{
		Name: "BDI",
		Build: func(mem *memory.Store) (llc.Cache, error) {
			return bdicache.New(bdicache.DefaultConfig(), mem)
		},
		Codec: bdiCodec,
		AppendConfigKey: func(dst []byte) []byte {
			cfg := bdicache.DefaultConfig()
			return keyU64(dst, uint64(cfg.Sets), uint64(cfg.TagWays), uint64(cfg.DataWays))
		},
	})
	Register(Scheme{
		Name: "Thesaurus",
		Build: func(mem *memory.Store) (llc.Cache, error) {
			return thesaurus.New(thesaurus.DefaultConfig(), mem)
		},
		Codec: thesaurusCodec,
		// AppendConfigKey stays nil: the harness keys the *effective*
		// (normalized, possibly swept) Thesaurus config explicitly, which
		// subsumes the default.
		Summary: func(x llc.ExtraSnapshot) string {
			ts, ok := x.(*thesaurus.Snapshot)
			if !ok {
				return ""
			}
			e := ts.Extra
			return fmt.Sprintf("  comp%%=%.1f diff=%.1fB bcache=%.3f fmt[raw,b+d,0+d,base,z]=%v fps=%d/%d",
				100*e.CompressibleFraction(), e.AvgDiffBytes(), ts.BaseCache.HitRate(), e.ByFormat,
				ts.LiveClusters, ts.ValidClusters)
		},
	})
	Register(Scheme{
		Name: "Ideal",
		Build: func(mem *memory.Store) (llc.Cache, error) {
			return ideal.New(ideal.DefaultConfig(), mem), nil
		},
		// Codec stays nil: the ideal model releases no Extra, so its
		// snapshots always carry the generic nil tag.
		AppendConfigKey: func(dst []byte) []byte {
			cfg := ideal.DefaultConfig()
			return keyU64(dst, uint64(cfg.TagEntries), uint64(cfg.TagWays),
				uint64(cfg.DataBytes), cfg.Seed)
		},
	})
	Register(Scheme{
		Name: "2x Baseline",
		Build: func(mem *memory.Store) (llc.Cache, error) {
			cfg := uncomp.DefaultConfig()
			cfg.SizeBytes *= 2
			return uncomp.New("2x Baseline", cfg, mem), nil
		},
		Codec: uncompCodec,
		AppendConfigKey: func(dst []byte) []byte {
			cfg := uncomp.DefaultConfig()
			cfg.SizeBytes *= 2
			dst = keyU64(dst, uint64(cfg.SizeBytes), uint64(cfg.Ways))
			return keyString(dst, cfg.Policy)
		},
	})
	Register(Scheme{
		Name: "CPack",
		Build: func(mem *memory.Store) (llc.Cache, error) {
			return cpack.New(cpack.DefaultConfig(), mem)
		},
		Codec: cpackCodec,
		AppendConfigKey: func(dst []byte) []byte {
			cfg := cpack.DefaultConfig()
			return keyU64(dst, uint64(cfg.Sets), uint64(cfg.TagWays), uint64(cfg.DataWays))
		},
		Summary: func(x llc.ExtraSnapshot) string {
			s, ok := x.(*cpack.Snapshot)
			if !ok {
				return ""
			}
			e := s.Extra
			return fmt.Sprintf("  pat[zzzz,zzzx,mmmm,mmmx,mmxx,xxxx]=%v", e.ByPattern)
		},
	})
	Register(Scheme{
		Name: "DISH",
		Build: func(mem *memory.Store) (llc.Cache, error) {
			return dish.New(dish.DefaultConfig(), mem)
		},
		Codec: dishCodec,
		AppendConfigKey: func(dst []byte) []byte {
			cfg := dish.DefaultConfig()
			return keyU64(dst, uint64(cfg.Sets), uint64(cfg.TagWays), uint64(cfg.DataWays))
		},
		Summary: func(x llc.ExtraSnapshot) string {
			s, ok := x.(*dish.Snapshot)
			if !ok {
				return ""
			}
			e := s.Extra
			return fmt.Sprintf("  fills[cpack,bdi,raw]=%d/%d/%d otf=%d",
				e.Scheme1Fills, e.Scheme2Fills, e.UncompressedFills, e.OTFSelections)
		},
	})
}
