// Registry-completeness gate: every registered design must construct by
// name, report the name it registered under, and — when it releases an
// Extra snapshot — carry a complete codec whose encode/decode round-trip
// is the identity. `make registry-check` runs exactly this file; it is
// part of `make ci` so a half-wired design cannot land.
package scheme_test

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/harness"
	"repro/internal/line"
	"repro/internal/memory"
	"repro/internal/scheme"
)

// reportOrder pins the registration (= report column) order. Existing
// columns keep their position; new designs append.
var reportOrder = []string{
	"Baseline", "Dedup", "BDI", "Thesaurus", "Ideal", "2x Baseline",
	"CPack", "DISH",
}

func TestRegistryOrderAndHarnessAgreement(t *testing.T) {
	if got := scheme.Names(); !reflect.DeepEqual(got, reportOrder) {
		t.Fatalf("registered schemes %v, want %v", got, reportOrder)
	}
	if !reflect.DeepEqual(harness.Designs, scheme.Names()) {
		t.Fatalf("harness.Designs %v diverged from registry %v",
			harness.Designs, scheme.Names())
	}
}

func TestBuildUnknownDesign(t *testing.T) {
	if _, err := scheme.Build("NoSuchDesign", memory.NewStore()); err == nil {
		t.Fatal("unknown design built without error")
	}
}

// exercise runs a little traffic through c so its release snapshot has
// non-trivial counters to round-trip.
func exercise(c interface {
	Write(line.Addr, line.Line) bool
	Read(line.Addr) (line.Line, bool)
}) {
	for i := 0; i < 64; i++ {
		var l line.Line
		l.SetWord(0, uint64(i)*0x9e3779b97f4a7c15)
		l.SetWord(3, uint64(i))
		c.Write(line.Addr(i)*line.Size, l)
	}
	for i := 0; i < 64; i += 3 {
		c.Read(line.Addr(i) * line.Size)
	}
}

// testDecoder mirrors the artifact run decoder's wire primitives
// (uvarint counters, 8-byte little-endian float bits, strict 0/1 bools,
// length-prefixed strings) so codec round-trips can be checked without
// importing the artifact package.
type testDecoder struct {
	data []byte
	err  error
}

func (d *testDecoder) Fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("decode: "+format, args...)
	}
}

func (d *testDecoder) Err() error { return d.err }

func (d *testDecoder) Uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data)
	if n <= 0 {
		d.Fail("%s", what)
		return 0
	}
	d.data = d.data[n:]
	return v
}

func (d *testDecoder) Count(what string, max uint64) int {
	v := d.Uvarint(what)
	if d.err == nil && v > max {
		d.Fail("%s %d exceeds bound %d", what, v, max)
	}
	if d.err != nil {
		return 0
	}
	return int(v)
}

func (d *testDecoder) F64(what string) float64 {
	if d.err != nil {
		return 0
	}
	if len(d.data) < 8 {
		d.Fail("%s", what)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.data))
	d.data = d.data[8:]
	return v
}

func (d *testDecoder) Bool(what string) bool {
	if d.err != nil {
		return false
	}
	if len(d.data) < 1 || d.data[0] > 1 {
		d.Fail("%s", what)
		return false
	}
	b := d.data[0] == 1
	d.data = d.data[1:]
	return b
}

func (d *testDecoder) Str(what string) string {
	n := d.Count(what+" length", 1<<20)
	if d.err != nil {
		return ""
	}
	if len(d.data) < n {
		d.Fail("truncated %s", what)
		return ""
	}
	s := string(d.data[:n])
	d.data = d.data[n:]
	return s
}

func (d *testDecoder) Bytes(what string, n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.data) < n {
		d.Fail("truncated %s", what)
		return nil
	}
	b := d.data[:n]
	d.data = d.data[n:]
	return b
}

var _ scheme.Decoder = (*testDecoder)(nil)

// TestEverySchemeIsComplete is the registry-completeness check: build
// each design by name, confirm it reports its registered name, release
// it, and require the snapshot to round-trip through the design's codec.
func TestEverySchemeIsComplete(t *testing.T) {
	for _, s := range scheme.All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			c, err := scheme.Build(s.Name, memory.NewStore())
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			if c.Name() != s.Name {
				t.Fatalf("cache names itself %q, registered as %q", c.Name(), s.Name)
			}
			exercise(c)
			snap := c.Release()
			if snap.Design != s.Name {
				t.Fatalf("snapshot design %q, want %q", snap.Design, s.Name)
			}
			if snap.Extra == nil {
				if s.Codec != nil {
					t.Fatalf("codec registered but release Extra is nil")
				}
				return
			}
			if s.Codec == nil {
				t.Fatalf("release Extra %T has no codec: cached runs cannot persist it", snap.Extra)
			}
			if s.Codec.Tag == 0 || s.Codec.Matches == nil || s.Codec.Encode == nil ||
				s.Codec.Decode == nil || s.Codec.Equal == nil {
				t.Fatalf("codec incomplete: %+v", s.Codec)
			}
			if !s.Codec.Matches(snap.Extra) {
				t.Fatalf("codec does not match its own design's snapshot %T", snap.Extra)
			}
			got, ok := scheme.CodecFor(snap.Extra)
			if !ok || got != s.Codec {
				t.Fatalf("CodecFor dispatched to a different codec")
			}
			if byTag, ok := scheme.CodecByTag(s.Codec.Tag); !ok || byTag != s.Codec {
				t.Fatalf("CodecByTag(%d) does not return this codec", s.Codec.Tag)
			}
			if !s.Codec.Equal(snap.Extra, snap.Extra.Clone()) {
				t.Fatalf("snapshot not Equal to its own Clone")
			}
			enc := s.Codec.Encode(nil, snap.Extra)
			d := &testDecoder{data: enc}
			dec := s.Codec.Decode(d)
			if d.Err() != nil {
				t.Fatalf("decode of own encoding failed: %v", d.Err())
			}
			if len(d.data) != 0 {
				t.Fatalf("decode left %d trailing bytes", len(d.data))
			}
			if !s.Codec.Equal(snap.Extra, dec) {
				t.Fatalf("decode(encode(x)) != x for %T", snap.Extra)
			}
		})
	}
}

// TestSummaryHooksRender: a Summary hook must accept its own design's
// snapshot and render a non-empty line.
func TestSummaryHooksRender(t *testing.T) {
	for _, s := range scheme.All() {
		if s.Summary == nil {
			continue
		}
		c, err := scheme.Build(s.Name, memory.NewStore())
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		exercise(c)
		snap := c.Release()
		if out := s.Summary(snap.Extra); out == "" {
			t.Errorf("%s: Summary rendered nothing", s.Name)
		}
	}
}
