// Package scheme is the compression-scheme registry: the single place a
// cache design plugs into the repository. A design registers once —
// construction by name, the codec hook that persists its release
// snapshot in the artifact cache, the config fragment folded into run
// content keys, and an optional report summary — and the harness, the
// artifact codec, and the campaign figures all pick it up from here.
// Registration order is report order: experiment tables emit one column
// per registered scheme, so new schemes append columns and existing
// columns keep their bytes.
package scheme

import (
	"fmt"

	"repro/internal/llc"
	"repro/internal/memory"
)

// Decoder is the reader a codec hook decodes its snapshot through. It is
// implemented by the artifact package's sticky-error run decoder: after
// the first failure every later read returns zero values and Err()
// reports the underlying corruption, so hooks read fields linearly
// without per-field error plumbing.
type Decoder interface {
	// Uvarint reads one varint counter; what names the field in errors.
	Uvarint(what string) uint64
	// Count reads a uvarint that sizes a following allocation, failing
	// the decode when it exceeds max.
	Count(what string, max uint64) int
	// F64 reads a fixed 8-byte IEEE bit pattern (exact, canonical).
	F64(what string) float64
	// Bool reads one strict 0/1 byte.
	Bool(what string) bool
	// Str reads a length-prefixed string.
	Str(what string) string
	// Bytes reads exactly n raw bytes; the returned slice aliases the
	// decode buffer and must be copied before the hook returns.
	Bytes(what string, n int) []byte
	// Fail marks the decode corrupt (first failure sticks).
	Fail(format string, args ...any)
	// Err reports the sticky decode error, nil while the decode is good.
	Err() error
}

// ExtraCodec persists one design's release-snapshot type (its
// llc.ExtraSnapshot implementation) in the artifact cache's run-output
// section. Encodings must be canonical — decode∘encode is the identity
// on accepted payloads (the codec fuzz contract) — and every counter a
// uvarint, every float a fixed 8-byte bit pattern, every bool one strict
// byte. Designs sharing a snapshot type (Baseline and 2x Baseline) share
// one codec value.
type ExtraCodec struct {
	// Tag is the snapshot's unique wire tag. Tag 0 is reserved for a nil
	// Extra; adding a tag requires an artifact.RunOutputVersion bump
	// (which turns every cached run into a clean miss).
	Tag uint8
	// Matches reports whether x is this codec's snapshot type. Encode
	// dispatch runs on the snapshot's Go type, never on the design name:
	// snapshots must round-trip even when carried by synthetic or
	// renamed designs.
	Matches func(x llc.ExtraSnapshot) bool
	// Encode appends x to dst and returns the extended slice. Only
	// called with x for which Matches(x) is true.
	Encode func(dst []byte, x llc.ExtraSnapshot) []byte
	// Decode reads one snapshot back. On corrupt input it calls d.Fail
	// and returns what it has; the caller discards partial results when
	// d.Err() is non-nil.
	Decode func(d Decoder) llc.ExtraSnapshot
	// Equal deep-compares two snapshots of this codec's type, bit-exact
	// on floats (the -cache-verify path). Only called when Matches is
	// true for both.
	Equal func(a, b llc.ExtraSnapshot) bool
}

// Scheme describes one registered cache design.
type Scheme struct {
	// Name is the design's report name, unique across the registry and
	// equal to what the built cache's Name() returns.
	Name string
	// Build constructs the design over a fresh backing store at its
	// default (paper) configuration.
	Build func(mem *memory.Store) (llc.Cache, error)
	// Codec persists the design's release snapshot, or nil when the
	// design releases no Extra (the snapshot's Extra is always nil and
	// the codec writes the generic nil tag).
	Codec *ExtraCodec
	// AppendConfigKey folds the design's default configuration into the
	// run content key, so cached runs never alias across a silent
	// default-config change. Nil for designs whose effective config is
	// already keyed elsewhere (Thesaurus: the harness passes the
	// normalized config into the key explicitly).
	AppendConfigKey func(dst []byte) []byte
	// Summary renders a one-line design-specific report suffix from the
	// release snapshot, or "" when there is nothing to add. Nil means no
	// summary.
	Summary func(x llc.ExtraSnapshot) string
}

// registry state: registration happens in this package's init (see
// builtin.go) and is read-only afterwards, so no locking is needed.
var (
	schemes []Scheme
	byName  = map[string]int{}
	byTag   = map[uint8]*ExtraCodec{}
	// codecs lists the distinct codecs in registration order, the
	// deterministic iteration order for type-dispatch (byTag is lookup
	// only — never ranged).
	codecs []*ExtraCodec
)

// Register adds s to the registry. It panics on duplicate names, reused
// codec tags, tag 0, or a missing builder — all programmer errors caught
// at init.
func Register(s Scheme) {
	if s.Name == "" || s.Build == nil {
		panic("scheme: Register needs a name and a builder")
	}
	if _, dup := byName[s.Name]; dup {
		panic(fmt.Sprintf("scheme: duplicate design %q", s.Name))
	}
	if c := s.Codec; c != nil {
		if c.Tag == 0 {
			panic(fmt.Sprintf("scheme: design %q uses reserved tag 0", s.Name))
		}
		if c.Matches == nil || c.Encode == nil || c.Decode == nil || c.Equal == nil {
			panic(fmt.Sprintf("scheme: design %q has an incomplete codec", s.Name))
		}
		if prev, ok := byTag[c.Tag]; ok {
			if prev != c {
				panic(fmt.Sprintf("scheme: design %q reuses tag %d", s.Name, c.Tag))
			}
		} else {
			byTag[c.Tag] = c
			codecs = append(codecs, c)
		}
	}
	byName[s.Name] = len(schemes)
	schemes = append(schemes, s)
}

// Names returns the registered design names in registration (report)
// order. The slice is a copy; callers may keep or reorder it.
func Names() []string {
	out := make([]string, len(schemes))
	for i := range schemes {
		out[i] = schemes[i].Name
	}
	return out
}

// Lookup returns the named scheme.
func Lookup(name string) (Scheme, bool) {
	i, ok := byName[name]
	if !ok {
		return Scheme{}, false
	}
	return schemes[i], true
}

// All returns every registered scheme in registration order. The slice
// is a copy.
func All() []Scheme {
	return append([]Scheme(nil), schemes...)
}

// Build constructs the named design over mem at its default
// configuration.
func Build(name string, mem *memory.Store) (llc.Cache, error) {
	s, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("harness: unknown design %q", name)
	}
	return s.Build(mem)
}

// CodecByTag returns the codec that owns a wire tag (decode dispatch).
func CodecByTag(tag uint8) (*ExtraCodec, bool) {
	c, ok := byTag[tag]
	return c, ok
}

// CodecFor returns the codec whose snapshot type x is (encode and
// equality dispatch). It returns false for nil and for snapshot types no
// registered design owns.
func CodecFor(x llc.ExtraSnapshot) (*ExtraCodec, bool) {
	if x == nil {
		return nil, false
	}
	for _, c := range codecs {
		if c.Matches(x) {
			return c, true
		}
	}
	return nil, false
}

// Codecs returns the distinct registered codecs in registration order.
// The slice is a copy.
func Codecs() []*ExtraCodec {
	return append([]*ExtraCodec(nil), codecs...)
}
