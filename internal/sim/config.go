// Package sim is the cache-hierarchy simulation substrate: it filters a
// core-level access trace through the private L1/L2 levels once (the
// resulting LLC-level stream is identical for every LLC design), replays
// that stream into any llc.Cache, and derives the paper's metrics — MPKI,
// IPC, footprint, and DRAM traffic — with a calibrated overlap-aware
// timing model standing in for the paper's ZSim setup.
package sim

import "repro/internal/dram"

// SystemConfig describes the simulated system of Table 1.
type SystemConfig struct {
	// L1DSizeBytes/L1DWays: private L1 data cache (32KB, 8-way, LRU).
	L1DSizeBytes, L1DWays int
	// L2SizeBytes/L2Ways: private L2 (256KB, 8-way, LRU).
	L2SizeBytes, L2Ways int
	// Timing parameterizes the performance model.
	Timing Timing
	// DRAM, when non-nil, replaces Timing.MemCycles with an open-page
	// DDR3 row-buffer model (package dram): attach dram.New(*DRAM) to the
	// backing store before Replay, which then uses the measured average
	// fill latency. Nil keeps the flat constant.
	DRAM *dram.Config
}

// Timing holds the latency model constants. The paper's system is a
// 4-wide out-of-order x86 at 2.6GHz; out-of-order execution overlaps much
// of each miss's latency, modelled by exposing only OverlapFactor of it.
type Timing struct {
	// FrequencyGHz is the core clock (2.66 for the i5-750-like core).
	FrequencyGHz float64
	// CoreIPC is the no-stall instruction throughput.
	CoreIPC float64
	// L2HitCycles, LLCHitCycles, MemCycles are access latencies in core
	// cycles (Table 1: 11-cycle L2, 39-cycle LLC; DDR3-1066 ≈ 70ns).
	L2HitCycles, LLCHitCycles, MemCycles float64
	// OverlapFactor is the fraction of each memory stall the out-of-order
	// core cannot hide.
	OverlapFactor float64
}

// DefaultSystem returns the Table 1 configuration.
func DefaultSystem() SystemConfig {
	return SystemConfig{
		L1DSizeBytes: 32 << 10,
		L1DWays:      8,
		L2SizeBytes:  256 << 10,
		L2Ways:       8,
		Timing: Timing{
			FrequencyGHz:  2.66,
			CoreIPC:       2.0,
			L2HitCycles:   11,
			LLCHitCycles:  39,
			MemCycles:     186,
			OverlapFactor: 0.35,
		},
	}
}

// DecompressionLatency is an optional interface an llc.Cache may implement
// to report the extra critical-path cycles its hit path adds (Table 4:
// Thesaurus decompression 1 cycle + segix location 4 cycles).
type DecompressionLatency interface {
	DecompressionCycles() float64
}

// CriticalDRAM is an optional interface reporting the number of extra
// critical-path DRAM accesses the design has incurred so far (Thesaurus
// base-cache misses on the read path, §6.4).
type CriticalDRAM interface {
	CriticalDRAMAccesses() uint64
}
