package sim

import (
	"fmt"

	"repro/internal/llc"
	"repro/internal/memory"
)

// ReplayOptions tunes a replay run.
type ReplayOptions struct {
	// WarmupFraction of the event stream runs before statistics reset
	// (the paper skips warmup instructions before measuring).
	WarmupFraction float64
	// SampleEvery controls footprint sampling (in events).
	SampleEvery int
	// Verify cross-checks every LLC read against the recorded value and
	// fails fast on divergence; integration tests enable it.
	Verify bool
	// OnSample, when non-nil, is called at every footprint sample point
	// (harness hooks for design-specific statistics such as Fig. 16).
	OnSample func(c llc.Cache)
}

// DefaultReplayOptions returns sensible experiment defaults.
func DefaultReplayOptions() ReplayOptions {
	return ReplayOptions{WarmupFraction: 0.25, SampleEvery: 2048}
}

// Result summarizes one design × workload replay.
type Result struct {
	Design       string
	Instructions uint64
	LLCStats     llc.Stats
	DRAM         memory.Stats

	// MPKI is LLC demand read misses per kilo-instruction (Fig. 13b).
	MPKI float64
	// IPC from the overlap-aware timing model (Fig. 13c).
	IPC float64
	// Cycles is the modelled execution time in core cycles.
	Cycles float64
	// CompressionRatio is the time-averaged Fig. 13a metric: resident
	// bytes a conventional cache would need over bytes actually used.
	CompressionRatio float64
	// Occupancy is the time-averaged compressed-size fraction
	// (Fig. 13a's y-axis: compressed size relative to baseline).
	Occupancy float64
	// AvgResidentLines is the time-averaged tag occupancy.
	AvgResidentLines float64
	// Samples is the number of footprint samples taken.
	Samples int
}

// AccessRate returns LLC accesses per second under the timing model, used
// by the power model (Fig. 14).
func (r Result) AccessRate(t Timing) float64 {
	if r.Cycles == 0 {
		return 0
	}
	seconds := r.Cycles / (t.FrequencyGHz * 1e9)
	return float64(r.LLCStats.Accesses()) / seconds
}

// DRAMRate returns demand DRAM accesses per second.
func (r Result) DRAMRate(t Timing) float64 {
	if r.Cycles == 0 {
		return 0
	}
	seconds := r.Cycles / (t.FrequencyGHz * 1e9)
	return float64(r.DRAM.Demand()) / seconds
}

// Replay drives the recorded LLC event stream into c, whose backing store
// must be st (used to stage fill values and read DRAM counters). It
// returns the design's metrics over the post-warmup window.
func Replay(c llc.Cache, rec *Recorded, st *memory.Store, sys SystemConfig, opt ReplayOptions) (Result, error) {
	if opt.SampleEvery <= 0 {
		opt.SampleEvery = 2048
	}
	warmup := int(opt.WarmupFraction * float64(len(rec.Events)))
	res := Result{Design: c.Name()}
	// Fill staging Pokes every event's line into st; size the map for the
	// recording's working set once instead of rehashing it up per replay.
	st.Reserve(rec.UniqueLines)

	var ratioSum, occSum, residentSum float64
	var measuredInstr uint64
	var critBase uint64 // critical DRAM accesses at measurement start

	for i := range rec.Events {
		ev := &rec.Events[i]
		if i == warmup {
			c.ResetStats()
			st.ResetStats()
			if cd, ok := c.(CriticalDRAM); ok {
				critBase = cd.CriticalDRAMAccesses()
			}
		}
		if i >= warmup {
			measuredInstr += ev.Instrs
		}
		switch ev.Kind {
		case EventRead:
			// Stage the fill value: the store must serve the program's
			// current content if the read misses.
			st.Poke(ev.Addr, ev.Data)
			got, _ := c.Read(ev.Addr)
			if opt.Verify && got != ev.Data {
				return res, fmt.Errorf("sim: %s returned wrong data for %#x at event %d",
					c.Name(), uint64(ev.Addr), i)
			}
		case EventWrite:
			c.Write(ev.Addr, ev.Data)
		}
		if i >= warmup && (i-warmup)%opt.SampleEvery == 0 {
			fp := c.Footprint()
			ratioSum += fp.CompressionRatio()
			occSum += 1 / fp.CompressionRatio()
			residentSum += float64(fp.ResidentLines)
			res.Samples++
			if opt.OnSample != nil {
				opt.OnSample(c)
			}
		}
	}

	res.Instructions = measuredInstr
	res.LLCStats = c.Stats()
	res.DRAM = st.Stats()
	finalizeSamples(&res, ratioSum, occSum, residentSum)
	extraHit := 0.0
	if dl, ok := c.(DecompressionLatency); ok {
		extraHit = dl.DecompressionCycles()
	}
	var critDRAM uint64
	if cd, ok := c.(CriticalDRAM); ok {
		critDRAM = cd.CriticalDRAMAccesses() - critBase
	}
	cyc, haveModel := st.DemandCycles()
	applyTiming(&res, rec, sys, extraHit, critDRAM, cyc, haveModel)
	return res, nil
}

// finalizeSamples converts the running footprint-sample sums into the
// time-averaged Fig. 13a metrics and the MPKI. Shared by the serial and
// set-sharded replays so both produce bit-identical derived metrics from
// identical sums.
//
//thesaurus:hotpath
func finalizeSamples(res *Result, ratioSum, occSum, residentSum float64) {
	if res.Samples > 0 {
		res.CompressionRatio = ratioSum / float64(res.Samples)
		res.Occupancy = occSum / float64(res.Samples)
		res.AvgResidentLines = residentSum / float64(res.Samples)
	}
	if res.Instructions > 0 {
		res.MPKI = float64(res.LLCStats.ReadMisses()) / float64(res.Instructions) * 1000
	}
}

// applyTiming fills the overlap-aware timing-model outputs (Cycles, IPC)
// from the merged post-warmup statistics. Upper-level behaviour is
// identical across designs, so L1/L2 stalls are scaled from the
// whole-trace counts by the measured window's share of instructions.
// demandCycles/haveModel carry the backing store's DRAM-model totals
// (Store.DemandCycles); with a model attached the flat memory latency is
// replaced by the measured per-access average.
//
//thesaurus:hotpath
func applyTiming(res *Result, rec *Recorded, sys SystemConfig, extraHit float64, critDRAM uint64, demandCycles float64, haveModel bool) {
	t := sys.Timing
	measuredInstr := res.Instructions
	share := 0.0
	if rec.Instructions > 0 {
		share = float64(measuredInstr) / float64(rec.Instructions)
	}
	memCycles := t.MemCycles
	if haveModel && res.DRAM.Demand() > 0 {
		memCycles = demandCycles / float64(res.DRAM.Demand())
	}
	s := res.LLCStats
	stalls := float64(rec.L2Hits) * share * t.L2HitCycles * t.OverlapFactor
	stalls += float64(s.ReadHits) * (t.LLCHitCycles + extraHit) * t.OverlapFactor
	stalls += float64(s.ReadMisses()) * (t.LLCHitCycles + memCycles) * t.OverlapFactor
	stalls += float64(critDRAM) * memCycles * t.OverlapFactor
	res.Cycles = float64(measuredInstr)/t.CoreIPC + stalls
	if res.Cycles > 0 {
		res.IPC = float64(measuredInstr) / res.Cycles
	}
}
