package sim

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/bdicache"
	"repro/internal/dedupcache"
	"repro/internal/dram"
	"repro/internal/ideal"
	"repro/internal/line"
	"repro/internal/llc"
	"repro/internal/memory"
	"repro/internal/thesaurus"
	"repro/internal/trace"
	"repro/internal/uncomp"
	"repro/internal/xrand"
)

// tinySystem shrinks L1/L2 so a small trace exercises all levels.
func tinySystem() SystemConfig {
	s := DefaultSystem()
	s.L1DSizeBytes = 2 << 10
	s.L2SizeBytes = 8 << 10
	return s
}

// synthTrace builds a random read/write trace over span lines with
// clustered content, pre-populating img.
func synthTrace(seed uint64, n, span int, img *memory.Store) []trace.Access {
	rng := xrand.New(seed)
	var protos [4]line.Line
	for p := range protos {
		for i := range protos[p] {
			protos[p][i] = byte(rng.Uint32())
		}
	}
	mk := func(i int, v uint32) line.Line {
		l := protos[i%4]
		l[0] = byte(v)
		l[1] = byte(i)
		return l
	}
	for i := 0; i < span; i++ {
		img.Poke(line.Addr(i)*line.Size, mk(i, 0))
	}
	version := map[int]uint32{}
	out := make([]trace.Access, n)
	for k := range out {
		i := rng.Intn(span)
		out[k].Addr = line.Addr(i) * line.Size
		out[k].Gap = uint32(rng.Intn(10))
		if rng.Bool(0.3) {
			out[k].Write = true
			version[i]++
			out[k].Data = mk(i, version[i])
		}
	}
	return out
}

func TestRecordFiltersHits(t *testing.T) {
	img := memory.NewStore()
	accesses := synthTrace(1, 20000, 64, img) // 64 lines: fits in L1
	rec := Record(trace.NewSliceSource(accesses), tinySystem(), img)
	if rec.CoreAccesses != 20000 {
		t.Fatalf("core accesses %d", rec.CoreAccesses)
	}
	// Working set fits L1 (2KB = 32 lines? 64 lines × 64B = 4KB > 2KB L1,
	// fits L2): LLC events must be a tiny fraction of accesses.
	if len(rec.Events) > 1000 {
		t.Fatalf("L1/L2 filtered too little: %d LLC events", len(rec.Events))
	}
	if rec.L1Hits+rec.L2Hits == 0 {
		t.Fatal("no upper-level hits")
	}
	if rec.Instructions == 0 || rec.LLCAPKI() <= 0 {
		t.Fatal("instruction accounting broken")
	}
}

// TestRecordEventDataConsistency: every event's payload must be a value
// the program actually held for that line — either its initial image or
// some store's data — never a fabricated mixture.
func TestRecordEventDataConsistency(t *testing.T) {
	img := memory.NewStore()
	accesses := synthTrace(2, 30000, 2048, img)
	// Collect the legal values per line before recording mutates img.
	valid := map[line.Addr]map[line.Line]bool{}
	record := func(a line.Addr, l line.Line) {
		if valid[a] == nil {
			valid[a] = map[line.Line]bool{}
		}
		valid[a][l] = true
	}
	for i := 0; i < 2048; i++ {
		a := line.Addr(i) * line.Size
		record(a, img.Peek(a))
	}
	for _, acc := range accesses {
		if acc.Write {
			record(acc.Addr, acc.Data)
		}
	}
	rec := Record(trace.NewSliceSource(accesses), tinySystem(), img)
	for i, ev := range rec.Events {
		if !valid[ev.Addr][ev.Data] {
			t.Fatalf("event %d carries a value the program never had for %#x", i, uint64(ev.Addr))
		}
	}
}

// TestReplayAllDesignsVerified: the end-to-end integration test — every
// LLC design replays the same stream with byte-exact verification on.
func TestReplayAllDesignsVerified(t *testing.T) {
	img := memory.NewStore()
	accesses := synthTrace(3, 60000, 4096, img)
	sys := tinySystem()
	rec := Record(trace.NewSliceSource(accesses), sys, img)
	if len(rec.Events) < 1000 {
		t.Fatalf("trace too filtered for a meaningful test: %d events", len(rec.Events))
	}

	builds := map[string]func(*memory.Store) (llc.Cache, error){
		"conv": func(m *memory.Store) (llc.Cache, error) {
			return uncomp.New("conv", uncomp.Config{SizeBytes: 64 << 10, Ways: 8, Policy: "plru"}, m), nil
		},
		"bdi": func(m *memory.Store) (llc.Cache, error) {
			return bdicache.New(bdicache.Config{Sets: 128, TagWays: 16, DataWays: 8}, m)
		},
		"dedup": func(m *memory.Store) (llc.Cache, error) {
			return dedupcache.New(dedupcache.Config{TagEntries: 2048, TagWays: 8, DataEntries: 700, HashEntries: 512}, m)
		},
		"thesaurus": func(m *memory.Store) (llc.Cache, error) {
			cfg := thesaurus.DefaultConfig()
			cfg.TagEntries = 2048
			cfg.DataSets = 90
			return thesaurus.New(cfg, m)
		},
		"ideal": func(m *memory.Store) (llc.Cache, error) {
			return ideal.New(ideal.Config{TagEntries: 2048, TagWays: 8, DataBytes: 45 << 10, Seed: 1}, m), nil
		},
	}
	opt := DefaultReplayOptions()
	opt.Verify = true
	names := make([]string, 0, len(builds))
	for name := range builds {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := memory.NewStore()
		c, err := builds[name](st)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := Replay(c, rec, st, sys, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.LLCStats.Accesses() == 0 || res.IPC <= 0 || res.Cycles <= 0 {
			t.Fatalf("%s: degenerate result %+v", name, res)
		}
		if res.Samples == 0 || res.CompressionRatio < 0.99 {
			t.Fatalf("%s: footprint sampling broken: %+v", name, res)
		}
	}
}

// TestTimingMonotonicity: more misses must mean more cycles and lower IPC.
func TestTimingMonotonicity(t *testing.T) {
	img := memory.NewStore()
	accesses := synthTrace(4, 60000, 4096, img)
	sys := tinySystem()
	rec := Record(trace.NewSliceSource(accesses), sys, img)

	run := func(kb int) Result {
		st := memory.NewStore()
		c := uncomp.New("c", uncomp.Config{SizeBytes: kb << 10, Ways: 8, Policy: "plru"}, st)
		res, err := Replay(c, rec, st, sys, DefaultReplayOptions())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	small := run(16)
	big := run(256)
	if small.MPKI <= big.MPKI {
		t.Fatalf("MPKI not decreasing with capacity: %.2f vs %.2f", small.MPKI, big.MPKI)
	}
	if small.IPC >= big.IPC {
		t.Fatalf("IPC not increasing with capacity: %.3f vs %.3f", small.IPC, big.IPC)
	}
	if small.Cycles <= big.Cycles {
		t.Fatal("cycles not increasing with misses")
	}
}

// TestWarmupReset: stats must cover only the measurement window.
func TestWarmupReset(t *testing.T) {
	img := memory.NewStore()
	accesses := synthTrace(5, 40000, 2048, img)
	sys := tinySystem()
	rec := Record(trace.NewSliceSource(accesses), sys, img)
	st := memory.NewStore()
	c := uncomp.New("c", uncomp.Config{SizeBytes: 32 << 10, Ways: 8, Policy: "plru"}, st)
	opt := DefaultReplayOptions()
	opt.WarmupFraction = 0.5
	res, err := Replay(c, rec, st, sys, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Measured accesses must be well under the whole stream.
	if res.LLCStats.Accesses() >= uint64(len(rec.Events)) {
		t.Fatalf("warmup not excluded: %d accesses of %d events",
			res.LLCStats.Accesses(), len(rec.Events))
	}
	if res.Instructions >= rec.Instructions {
		t.Fatal("instructions not windowed")
	}
}

// TestDRAMRates: rates are positive and DRAM ≤ LLC access rate.
func TestDRAMRates(t *testing.T) {
	img := memory.NewStore()
	accesses := synthTrace(6, 40000, 4096, img)
	sys := tinySystem()
	rec := Record(trace.NewSliceSource(accesses), sys, img)
	st := memory.NewStore()
	c := uncomp.New("c", uncomp.Config{SizeBytes: 16 << 10, Ways: 8, Policy: "plru"}, st)
	res, err := Replay(c, rec, st, sys, DefaultReplayOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.AccessRate(sys.Timing) <= 0 || res.DRAMRate(sys.Timing) <= 0 {
		t.Fatal("rates not positive")
	}
}

// TestInclusiveBackInvalidation: an L2 eviction with a dirty L1 copy must
// still produce the writeback (the value cannot be lost).
func TestInclusiveBackInvalidation(t *testing.T) {
	img := memory.NewStore()
	sys := tinySystem()
	var accesses []trace.Access
	var dirty line.Line
	dirty.SetWord(0, 0xD1237)
	// Write line 0 (lands dirty in L1), then sweep enough lines to evict
	// it from both levels.
	accesses = append(accesses, trace.Access{Addr: 0, Write: true, Data: dirty})
	for i := 1; i < 2000; i++ {
		accesses = append(accesses, trace.Access{Addr: line.Addr(i) * line.Size})
	}
	// Touch line 0 again: the fill data must be the dirty value.
	accesses = append(accesses, trace.Access{Addr: 0})
	rec := Record(trace.NewSliceSource(accesses), sys, img)
	found := false
	for _, ev := range rec.Events {
		if ev.Addr == 0 && ev.Kind == EventWrite && ev.Data == dirty {
			found = true
		}
	}
	if !found {
		t.Fatal("dirty L1 line lost during L2 eviction")
	}
	// The final read event must also see the dirty value.
	last := rec.Events[len(rec.Events)-1]
	if last.Addr != 0 || last.Kind != EventRead || last.Data != dirty {
		t.Fatalf("final read event %+v", last)
	}
}

// TestReplayWithDRAMModel: attaching the open-page model changes the
// effective memory latency coherently (streaming fills are cheaper than
// the flat constant, so IPC improves; totals stay positive).
func TestReplayWithDRAMModel(t *testing.T) {
	img := memory.NewStore()
	accesses := synthTrace(8, 60000, 4096, img)
	sys := tinySystem()
	rec := Record(trace.NewSliceSource(accesses), sys, img)

	run := func(withModel bool) Result {
		st := memory.NewStore()
		if withModel {
			st.AttachLatencyModel(dram.New(dram.DDR3_1066()))
		}
		c := uncomp.New("c", uncomp.Config{SizeBytes: 16 << 10, Ways: 8, Policy: "plru"}, st)
		res, err := Replay(c, rec, st, sys, DefaultReplayOptions())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	flat := run(false)
	modelled := run(true)
	// Same cache behaviour, different timing only.
	if flat.MPKI != modelled.MPKI {
		t.Fatalf("MPKI diverged: %v vs %v", flat.MPKI, modelled.MPKI)
	}
	if modelled.IPC <= 0 || modelled.Cycles <= 0 {
		t.Fatal("degenerate modelled timing")
	}
	if modelled.IPC == flat.IPC {
		t.Fatal("DRAM model had no timing effect")
	}
}

// TestShardedWarmupBoundaries: Replay and ReplaySharded each compute the
// warmup index from WarmupFraction independently (replay.go and
// sharded.go carry a copy of the same formula), so a drift in either
// copy silently breaks the byte-identity contract. This property test
// pins field-for-field agreement — metrics, sample counts, and the full
// release snapshot — at the degenerate extremes (warmup == 0, warmup ==
// len(events)) and at off-by-one sample-schedule boundaries around the
// last sample instant.
func TestShardedWarmupBoundaries(t *testing.T) {
	img := memory.NewStore()
	accesses := synthTrace(9, 60000, 4096, img)
	sys := tinySystem()
	rec := Record(trace.NewSliceSource(accesses), sys, img)
	e := len(rec.Events)
	const sampleEvery = 64
	if e < 4*sampleEvery {
		t.Fatalf("trace too filtered for boundary cases: %d events", e)
	}
	cfg := uncomp.Config{SizeBytes: 64 << 10, Ways: 8, Policy: "plru"}

	// fracFor yields a WarmupFraction that truncates to exactly w:
	// (w+0.5)/e × e is within half an event of w+0.5, so int() floors it
	// to w for every e this trace produces.
	fracFor := func(w int) float64 { return (float64(w) + 0.5) / float64(e) }
	fracs := []float64{
		0,          // warmup == 0: reset fires on the first event
		1,          // warmup == len(events): empty measurement window
		fracFor(1), // reset one event in
		fracFor(e - 1),
		// Around one SampleEvery stride before the end: the number of
		// post-warmup sample instants changes by one across these.
		fracFor(e - sampleEvery - 1),
		fracFor(e - sampleEvery),
		fracFor(e - sampleEvery + 1),
	}
	for _, frac := range fracs {
		warmup := int(frac * float64(e))
		opt := ReplayOptions{WarmupFraction: frac, SampleEvery: sampleEvery, Verify: true}

		st := memory.NewStore()
		c := uncomp.New("Baseline", cfg, st)
		want, err := Replay(c, rec, st, sys, opt)
		if err != nil {
			t.Fatalf("warmup=%d: serial: %v", warmup, err)
		}
		wantSnap := c.Release()
		st.Release()

		for _, n := range []int{2, 3} {
			shards := make([]llc.Cache, n)
			stores := make([]*memory.Store, n)
			ucs := make([]*uncomp.Cache, n)
			for i := range shards {
				stores[i] = memory.NewStore()
				ucs[i] = uncomp.New("Baseline", cfg, stores[i])
				shards[i] = ucs[i]
			}
			got, err := ReplaySharded(shards, stores, rec, sys, opt)
			if err != nil {
				t.Fatalf("warmup=%d shards=%d: %v", warmup, n, err)
			}
			gotSnap := uncomp.MergeRelease(ucs)
			for _, s := range stores {
				s.Release()
			}
			if got != want {
				t.Errorf("warmup=%d/%d shards=%d: result diverged\n got %+v\nwant %+v",
					warmup, e, n, got, want)
			}
			if !reflect.DeepEqual(gotSnap, wantSnap) {
				t.Errorf("warmup=%d/%d shards=%d: release snapshot diverged", warmup, e, n)
			}
		}
	}
}
