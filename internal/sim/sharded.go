package sim

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/line"
	"repro/internal/llc"
	"repro/internal/memory"
)

// SetPartitioned is implemented by LLC designs whose entire observable
// state is partitioned by tag set: an access to address A touches only
// state owned by A's set (its tag entries, that set's replacement bits,
// per-set data storage) plus commutative statistics counters. For such a
// design, an event stream partitioned by set replays identically on
// disjoint shard caches, which is what lets ReplaySharded parallelize a
// single replay without changing any result bit.
//
// Conventional caches qualify. Designs with cross-set shared structures —
// the Thesaurus base table and LLC base cache, the dedup hash — do not:
// their placement decisions observe global state (and a shared RNG), so
// they must replay serially.
type SetPartitioned interface {
	llc.Cache
	// SetIndex maps an address to its owning tag set.
	SetIndex(addr line.Addr) int
	// NumTagSets reports the tag set count.
	NumTagSets() int
}

// shardSample is one shard's contribution to a global footprint sample
// instant: the shard-local footprint at that point in the event stream.
// Summing resident/used across shards reconstructs the exact integer
// footprint the serial replay would have observed, so the derived floats
// (compression ratio, occupancy) are bit-identical.
type shardSample struct {
	resident int
	used     int
	total    int
}

// shardResult is everything one shard goroutine produces. Each goroutine
// writes only its own index of the results slice (no shared mutable
// state), so the merge is deterministic for any interleaving.
type shardResult struct {
	llc          llc.Stats
	dram         memory.Stats
	measured     uint64
	samples      []shardSample
	critDRAM     uint64
	demandCycles float64
	haveModel    bool
	err          error
	errAt        int
}

// ReplaySharded replays rec across len(shards) disjoint shard caches of
// one set-partitioned design and merges the results into exactly what
// Replay would have produced on a single cache: statistics summed
// field-wise, footprint samples summed per instant before the float
// averaging, and the timing model applied to the merged totals. Shard i
// must be backed by stores[i]; all shards must be identically configured.
//
// Byte-identity with the serial replay holds by construction: events are
// partitioned by tag set, each shard processes its events in global
// order, warmup resets and sample instants are aligned to global event
// indices, and every merged float is computed from integer sums in the
// serial accumulation order.
func ReplaySharded(shards []llc.Cache, stores []*memory.Store, rec *Recorded, sys SystemConfig, opt ReplayOptions) (Result, error) {
	if len(shards) == 0 {
		return Result{}, fmt.Errorf("sim: sharded replay needs at least one shard")
	}
	if len(shards) != len(stores) {
		return Result{}, fmt.Errorf("sim: %d shards but %d stores", len(shards), len(stores))
	}
	if opt.OnSample != nil {
		return Result{}, fmt.Errorf("sim: sharded replay cannot host OnSample hooks")
	}
	if len(shards) == 1 {
		return Replay(shards[0], rec, stores[0], sys, opt)
	}
	if opt.SampleEvery <= 0 {
		opt.SampleEvery = 2048
	}
	parts := make([]SetPartitioned, len(shards))
	for i, c := range shards {
		p, ok := c.(SetPartitioned)
		if !ok {
			return Result{}, fmt.Errorf("sim: design %q is not set-partitioned", c.Name())
		}
		if i > 0 && p.NumTagSets() != parts[0].NumTagSets() {
			return Result{}, fmt.Errorf("sim: shard %d has %d tag sets, shard 0 has %d",
				i, p.NumTagSets(), parts[0].NumTagSets())
		}
		parts[i] = p
	}
	if len(rec.Events) > math.MaxInt32 {
		return Result{}, fmt.Errorf("sim: event stream too long to shard (%d events)", len(rec.Events))
	}

	res := Result{Design: shards[0].Name()}
	warmup := int(opt.WarmupFraction * float64(len(rec.Events)))
	// Global sample schedule: instant s is event index warmup+s·SampleEvery,
	// exactly the indices the serial loop samples at.
	numSamples := 0
	if warmup < len(rec.Events) {
		numSamples = (len(rec.Events)-1-warmup)/opt.SampleEvery + 1
	}

	// Partition the event stream by tag set. Every shard sees its events in
	// global order, and a set's full event subsequence lands on one shard,
	// so per-set state (tags, replacement bits) evolves exactly as in the
	// serial replay.
	n := len(shards)
	events := make([][]int32, n)
	for i := range rec.Events {
		s := parts[0].SetIndex(rec.Events[i].Addr) % n
		events[s] = append(events[s], int32(i))
	}

	outs := make([]shardResult, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		stores[i].Reserve(rec.UniqueLines/n + 1)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runShard(shards[i], stores[i], rec, events[i], warmup, opt.SampleEvery, numSamples, opt.Verify, &outs[i])
		}(i)
	}
	wg.Wait()

	// A verify divergence aborts the run; with several shards failing, the
	// error the serial replay would have hit first (smallest global event
	// index) wins.
	var firstErr error
	firstAt := 0
	for i := range outs {
		if outs[i].err != nil && (firstErr == nil || outs[i].errAt < firstAt) {
			firstErr, firstAt = outs[i].err, outs[i].errAt
		}
	}
	if firstErr != nil {
		return res, firstErr
	}

	// Merge. Integer counters sum exactly; the sample-derived floats are
	// recomputed per instant from the summed integer footprints, in the
	// same ascending-instant order the serial loop accumulates them.
	var measured, critDRAM uint64
	var demandCycles float64
	haveModel := true
	for i := range outs {
		o := &outs[i]
		measured += o.measured
		critDRAM += o.critDRAM
		demandCycles += o.demandCycles
		haveModel = haveModel && o.haveModel
		s := o.llc
		res.LLCStats.Reads += s.Reads
		res.LLCStats.Writes += s.Writes
		res.LLCStats.ReadHits += s.ReadHits
		res.LLCStats.WriteHits += s.WriteHits
		res.LLCStats.Fills += s.Fills
		res.LLCStats.Writebacks += s.Writebacks
		for k := range o.dram.Counts {
			res.DRAM.Counts[k] += o.dram.Counts[k]
		}
	}
	var ratioSum, occSum, residentSum float64
	for s := 0; s < numSamples; s++ {
		fp := llc.Footprint{DataBytesTotal: outs[0].samples[s].total}
		for i := range outs {
			fp.ResidentLines += outs[i].samples[s].resident
			fp.DataBytesUsed += outs[i].samples[s].used
		}
		ratioSum += fp.CompressionRatio()
		occSum += 1 / fp.CompressionRatio()
		residentSum += float64(fp.ResidentLines)
		res.Samples++
	}
	res.Instructions = measured
	finalizeSamples(&res, ratioSum, occSum, residentSum)
	extraHit := 0.0
	if dl, ok := shards[0].(DecompressionLatency); ok {
		extraHit = dl.DecompressionCycles()
	}
	applyTiming(&res, rec, sys, extraHit, critDRAM, demandCycles, haveModel)
	return res, nil
}

// runShard replays one shard's event subsequence (global indices, in
// ascending order) against its private cache and store, recording partial
// footprints at every global sample instant and resetting statistics at
// the global warmup boundary — both keyed to global indices so the merged
// run is indistinguishable from the serial one.
func runShard(c llc.Cache, st *memory.Store, rec *Recorded, events []int32, warmup, sampleEvery, numSamples int, verify bool, out *shardResult) {
	out.samples = make([]shardSample, 0, numSamples)
	var critBase uint64
	crossed := false
	record := func() {
		fp := c.Footprint()
		out.samples = append(out.samples, shardSample{fp.ResidentLines, fp.DataBytesUsed, fp.DataBytesTotal})
	}
	reset := func() {
		c.ResetStats()
		st.ResetStats()
		if cd, ok := c.(CriticalDRAM); ok {
			critBase = cd.CriticalDRAMAccesses()
		}
		crossed = true
	}
	for _, gi := range events {
		g := int(gi)
		// Flush every sample instant this shard has replayed past: its
		// state at instant warmup+s·sampleEvery is its state after its last
		// event with global index ≤ that instant (later shard-local events
		// have strictly larger global indices).
		for len(out.samples) < numSamples && g > warmup+len(out.samples)*sampleEvery {
			record()
		}
		if !crossed && g >= warmup {
			reset()
		}
		ev := &rec.Events[g]
		if g >= warmup {
			out.measured += ev.Instrs
		}
		switch ev.Kind {
		case EventRead:
			// Stage the fill value: the store must serve the program's
			// current content if the read misses.
			st.Poke(ev.Addr, ev.Data)
			got, _ := c.Read(ev.Addr)
			if verify && got != ev.Data {
				out.err = fmt.Errorf("sim: %s returned wrong data for %#x at event %d",
					c.Name(), uint64(ev.Addr), g)
				out.errAt = g
				return
			}
		case EventWrite:
			c.Write(ev.Addr, ev.Data)
		}
	}
	// Tail: a shard whose events all precede warmup still resets (the
	// serial reset clears the whole cache's counters at the boundary), and
	// its state contributes unchanged to every remaining sample instant.
	if !crossed && warmup < len(rec.Events) {
		reset()
	}
	for len(out.samples) < numSamples {
		record()
	}
	out.llc = c.Stats()
	out.dram = st.Stats()
	if cd, ok := c.(CriticalDRAM); ok {
		out.critDRAM = cd.CriticalDRAMAccesses() - critBase
	}
	out.demandCycles, out.haveModel = st.DemandCycles()
}
