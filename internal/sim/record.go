package sim

import (
	"repro/internal/cache"
	"repro/internal/line"
	"repro/internal/memory"
	"repro/internal/trace"
)

// EventKind distinguishes LLC-level operations.
type EventKind uint8

// LLC-level event kinds.
const (
	// EventRead is a demand fill request from the L2 (L2 read or write
	// miss: both allocate).
	EventRead EventKind = iota
	// EventWrite is a dirty writeback from the L2.
	EventWrite
)

// Event is one LLC-level access. For EventRead, Data is the value a miss
// must return (the program's current value of the line); for EventWrite it
// is the content being written back.
type Event struct {
	Kind   EventKind
	Addr   line.Addr
	Data   line.Line
	Instrs uint64 // instructions retired since the previous event
}

// Recorded is the L1/L2-filtered form of a workload: the LLC event stream
// plus the upper-level statistics needed by the timing model. It is
// computed once per workload and replayed into every LLC design.
type Recorded struct {
	Events       []Event
	Instructions uint64
	CoreAccesses uint64
	L1Hits       uint64
	L2Hits       uint64
	// UniqueLines is the number of distinct line addresses in Events;
	// replays use it to pre-size their backing store (one recording is
	// replayed into many designs, so the count amortizes).
	UniqueLines int
}

// LLCAPKI returns LLC accesses per kilo-instruction (pressure indicator).
func (r *Recorded) LLCAPKI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(len(r.Events)) / float64(r.Instructions) * 1000
}

// l1Payload / l2Payload: the private levels are tag-only; data lives in
// the shared image (writes update it immediately, and dirty evictions
// snapshot it on the way down).
type void struct{}

// Record streams src through the private L1D and L2 and returns the
// resulting LLC-level event stream. img is the program's memory image: it
// must hold the workload's initial data (pre-populated, mirroring the
// paper's warmup skip) and is updated in place by stores.
func Record(src trace.Source, sys SystemConfig, img *memory.Store) *Recorded {
	l1 := cache.New[void](cache.LineConfig(sys.L1DSizeBytes, sys.L1DWays, "lru"))
	l2 := cache.New[void](cache.LineConfig(sys.L2SizeBytes, sys.L2Ways, "lru"))
	rec := &Recorded{}
	var sinceLast uint64

	emit := func(kind EventKind, addr line.Addr) {
		rec.Events = append(rec.Events, Event{
			Kind:   kind,
			Addr:   addr,
			Data:   img.Peek(addr),
			Instrs: sinceLast,
		})
		sinceLast = 0
	}

	// l2Evict handles an L2 eviction: inclusive hierarchy, so the L1 copy
	// (if any) is back-invalidated, its dirtiness folding into the
	// writeback (the image already holds the latest value).
	l2Evict := func(e cache.Entry[void]) {
		dirty := e.Dirty
		if l1e, idx := l1.Peek(e.Addr); l1e != nil {
			dirty = dirty || l1e.Dirty
			l1.InvalidateIndex(idx)
		}
		if dirty {
			emit(EventWrite, e.Addr)
		}
	}

	handle := func(a *trace.Access) {
		addr := a.Addr.LineAddr()
		rec.Instructions += uint64(a.Gap) + 1
		sinceLast += uint64(a.Gap) + 1
		rec.CoreAccesses++
		// The image is updated only after the hierarchy handles the
		// access: a write-miss fill (EventRead) must carry the line's
		// pre-write value — the store is applied in the L1 afterwards.
		if e, _ := l1.Lookup(addr); e != nil {
			rec.L1Hits++
			if a.Write {
				e.Dirty = true
				img.Poke(addr, a.Data)
			}
			return
		}
		// L1 miss: look up L2.
		l2e, _ := l2.Lookup(addr)
		if l2e != nil {
			rec.L2Hits++
		} else {
			// L2 miss: demand fill from the LLC.
			emit(EventRead, addr)
			ne, _, evicted, had := l2.Insert(addr)
			if had {
				l2Evict(evicted)
			}
			l2e = ne
		}
		// Fill L1 (inclusive under L2).
		l1e, _, evicted, had := l1.Insert(addr)
		if had && evicted.Dirty {
			// L1 dirty victim merges into its L2 copy.
			if l2v, _ := l2.Peek(evicted.Addr); l2v != nil {
				l2v.Dirty = true
			} else {
				// Non-inclusive corner (back-invalidated earlier): write
				// through to the LLC.
				emit(EventWrite, evicted.Addr)
			}
		}
		if a.Write {
			l1e.Dirty = true
			img.Poke(addr, a.Data)
		}
		_ = l1e
	}

	// Pull accesses in batches when the source supports it (the workload
	// streams and SliceSource do): one interface call per batch instead of
	// per access, with identical access sequence either way.
	if bs, ok := src.(trace.BatchSource); ok {
		var batch [512]trace.Access
		for {
			n := bs.FillBatch(batch[:])
			for i := 0; i < n; i++ {
				handle(&batch[i])
			}
			if n < len(batch) {
				break
			}
		}
	} else {
		var a trace.Access
		for src.Next(&a) {
			handle(&a)
		}
	}

	// Flush dirty L1/L2 state? No: the paper measures a window of steady
	// execution; residual dirty lines simply never reach the LLC, exactly
	// as in a windowed simulation.
	seen := make(map[line.Addr]struct{}, len(rec.Events))
	for i := range rec.Events {
		seen[rec.Events[i].Addr] = struct{}{}
	}
	rec.UniqueLines = len(seen)
	return rec
}
