# Repository verification targets. `make ci` is the gate: formatting,
# vet, the determinism lint suite, build, the full test suite, and a
# race-detector pass over the packages that own the campaign worker
# pools.

GO ?= go

.PHONY: ci vet fmtcheck lint allocgate alloc-budget lint-fix-check registry-check build test race fuzz bench benchsmoke bench-json bench-diff cache-identity clean-cache

ci: fmtcheck vet lint allocgate lint-fix-check registry-check build test race benchsmoke cache-identity

vet:
	$(GO) vet ./...

# gofmt cleanliness: any file listed is a failure.
fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# thesauruslint mechanically enforces the determinism contract
# (docs/determinism.md): no wall-clock/env/math-rand inputs in
# simulation packages, no map iteration feeding ordered output, no
# shared-state mutation from worker goroutines, config-derived PRNG
# seeds, no order-dependent float reductions, and no reads of a released
# resource (docs/performance.md, releaseuse). Audited exceptions live
# in lint.allow.
lint:
	$(GO) run ./cmd/thesauruslint ./...

# The allocation gate for the zero-alloc hot path
# (docs/static-analysis.md): the AST pass flags allocation constructs
# reachable from //thesaurus:hotpath roots (run standalone here with an
# empty allowlist so entries for the other analyzers don't read as
# stale), and the escape pass diffs the compiler's -gcflags=-m escape
# diagnostics on those functions against the committed alloc.budget.
allocgate:
	$(GO) run ./cmd/thesauruslint -allow /dev/null -analyzers allocgate,hotpath-pragma ./...
	$(GO) run ./cmd/thesauruslint -escapes

# Regenerate alloc.budget from the current tree. Review the diff before
# committing: a count moving up is a new hot-path heap allocation.
alloc-budget:
	$(GO) run ./cmd/thesauruslint -escapes -write-budget

# -fix must converge in one pass and never splice overlapping edits;
# these are the regression tests that pin both properties.
lint-fix-check:
	$(GO) test -run 'TestFixIdempotence|TestApplyEditsOverlap' ./internal/lint

# Registry completeness (internal/scheme): every registered design must
# build by name, report its registered name, and round-trip its release
# snapshot through its codec hook — a half-wired scheme fails here, not
# in a stale artifact cache.
registry-check:
	$(GO) test -run 'TestRegistryOrderAndHarnessAgreement|TestEverySchemeIsComplete' ./internal/scheme

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The worker pools live in harness (RunMatrix, ParMap) and are driven by
# the experiments package; -race over their tests catches data races in
# the parallel campaign paths — including the per-worker scratch arenas
# the Thesaurus/BΔI caches carry, the singleflight run coalescing, and
# the pooled base-table release lifecycle (docs/performance.md). Short
# trace lengths keep this a smoke pass, not a full campaign.
race:
	$(GO) test -race -count=1 ./internal/harness ./internal/experiments ./internal/thesaurus

# Compile-and-run the micro-benchmarks once: catches benchmarks broken by
# API changes without paying full measurement time. The figure benchmarks
# in the root package are excluded — even one iteration runs a whole
# experiment.
benchsmoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./internal/... > /dev/null
	$(GO) test -run='^$$' -bench='Fingerprint|ReadHit|InsertStream|WorkloadGeneration' -benchtime=1x . > /dev/null

# Short fuzzing smoke over the encoding and fingerprint invariants; the
# corpus seeds come from the unit-test vectors, so even a few seconds
# exercises the interesting shapes.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzDiffEncodeRoundtrip -fuzztime=5s ./internal/diffenc
	$(GO) test -run='^$$' -fuzz=FuzzLSHFingerprintStable -fuzztime=5s ./internal/lsh
	$(GO) test -run='^$$' -fuzz=FuzzRecordedCodecRoundtrip -fuzztime=5s ./internal/artifact
	$(GO) test -run='^$$' -fuzz=FuzzRunOutputCodecRoundtrip -fuzztime=5s ./internal/artifact

# The artifact cache is an accelerator, never an input: campaign reports
# must be byte-identical whether the cache is off, cold, or warm, with
# the run-level layer on or off, serial, parallel, or distributed across
# worker processes (docs/performance.md) — including over the netq TCP
# transport (docs/distribution.md), both with a shared cache dir
# (key-only completions) and with private per-worker dirs (artifact
# streaming), and even when a worker is killed -9 mid-campaign (its
# leases requeue and the survivor finishes). The per-experiment
# wall-clock lines are the only legitimate difference in text mode and
# are filtered before comparison; artifact stats go to stderr and never
# touch the reports. The cold-vs-warm timing at the end enforces the run-level
# cache's reason to exist: a warm quick-campaign rerun must be >=5x
# faster than the cold run (it is pure artifact decode, so the margin is
# ordinarily far larger).
cache-identity:
	@set -e; tmp=$$(mktemp -d); trap "rm -rf $$tmp" EXIT; \
	$(GO) build -o $$tmp/thesaurus ./cmd/thesaurus; \
	echo "cache-identity: cache-off serial (reference)"; \
	$$tmp/thesaurus -no-cache -workers 1 -quick -profiles mcf,omnetpp,xz,gcc fig13 2>/dev/null \
		| sed '/completed in/d' >$$tmp/ref.txt; \
	$$tmp/thesaurus -json -no-cache -workers 1 -quick -profiles mcf,omnetpp,xz,gcc fig13 \
		2>/dev/null >$$tmp/ref.json; \
	echo "cache-identity: cold cache, workers=4"; \
	t0=$$(date +%s%3N); \
	$$tmp/thesaurus -cache-dir $$tmp/cache -workers 4 -quick -profiles mcf,omnetpp,xz,gcc fig13 \
		2>/dev/null | sed '/completed in/d' >$$tmp/cold.txt; \
	t1=$$(date +%s%3N); \
	echo "cache-identity: warm cache, serial + json workers=4"; \
	$$tmp/thesaurus -cache-dir $$tmp/cache -workers 1 -quick -profiles mcf,omnetpp,xz,gcc fig13 \
		2>/dev/null | sed '/completed in/d' >$$tmp/warm.txt; \
	t2=$$(date +%s%3N); \
	$$tmp/thesaurus -json -cache-dir $$tmp/cache -workers 4 -quick -profiles mcf,omnetpp,xz,gcc fig13 \
		2>/dev/null >$$tmp/warm.json; \
	echo "cache-identity: warm cache, run-level layer off"; \
	$$tmp/thesaurus -cache-dir $$tmp/cache -no-run-cache -workers 4 -quick -profiles mcf,omnetpp,xz,gcc fig13 \
		2>/dev/null | sed '/completed in/d' >$$tmp/norun.txt; \
	echo "cache-identity: distributed (-distribute 2), fresh cache"; \
	$$tmp/thesaurus -distribute 2 -cache-dir $$tmp/dcache -workers 1 -quick -profiles mcf,omnetpp,xz,gcc fig13 \
		2>/dev/null | sed '/completed in/d' >$$tmp/dist.txt; \
	$$tmp/thesaurus -json -distribute 2 -cache-dir $$tmp/dcache -workers 1 -quick -profiles mcf,omnetpp,xz,gcc fig13 \
		2>/dev/null >$$tmp/dist.json; \
	echo "cache-identity: netq loopback (-serve + 2 workers, shared cache dir), fresh cache"; \
	$$tmp/thesaurus -serve 127.0.0.1:0 -addr-file $$tmp/addr1 -distribute 2 \
		-cache-dir $$tmp/ncache -workers 1 -quick -profiles mcf,omnetpp,xz,gcc fig13 \
		2>/dev/null | sed '/completed in/d' >$$tmp/netq.txt; \
	$$tmp/thesaurus -json -serve 127.0.0.1:0 -addr-file $$tmp/addr1 -distribute 2 \
		-cache-dir $$tmp/ncache -workers 1 -quick -profiles mcf,omnetpp,xz,gcc fig13 \
		2>/dev/null >$$tmp/netq.json; \
	echo "cache-identity: netq streaming (workers with private cache dirs), one worker killed mid-campaign"; \
	$$tmp/thesaurus -worker -connect @$$tmp/addr2 -cache-dir $$tmp/w1cache 2>/dev/null & w1=$$!; \
	$$tmp/thesaurus -worker -connect @$$tmp/addr2 -cache-dir $$tmp/w2cache 2>/dev/null & w2=$$!; \
	( sleep 3; kill -9 $$w2 2>/dev/null ) & killer=$$!; \
	$$tmp/thesaurus -serve 127.0.0.1:0 -addr-file $$tmp/addr2 -lease 5s -serve-grace 30s \
		-cache-dir $$tmp/nkcache -workers 1 -quick -profiles mcf,omnetpp,xz,gcc fig13 \
		2>/dev/null | sed '/completed in/d' >$$tmp/netqkill.txt; \
	wait $$w1 $$killer 2>/dev/null || true; \
	cmp $$tmp/ref.txt $$tmp/cold.txt; \
	cmp $$tmp/ref.txt $$tmp/warm.txt; \
	cmp $$tmp/ref.json $$tmp/warm.json; \
	cmp $$tmp/ref.txt $$tmp/norun.txt; \
	cmp $$tmp/ref.txt $$tmp/dist.txt; \
	cmp $$tmp/ref.json $$tmp/dist.json; \
	cmp $$tmp/ref.txt $$tmp/netq.txt; \
	cmp $$tmp/ref.json $$tmp/netq.json; \
	cmp $$tmp/ref.txt $$tmp/netqkill.txt; \
	cold=$$((t1-t0)); warm=$$((t2-t1)); \
	echo "cache-identity: cold $${cold}ms, warm $${warm}ms"; \
	if [ $$((warm*5)) -gt $$cold ]; then \
		echo "cache-identity: FAIL: warm quick-campaign rerun not >=5x faster than cold"; exit 1; fi; \
	echo "cache-identity: OK (byte-identical across cache-off/cold/warm/run-cache-off/distributed/netq/netq-kill; warm >=5x cold)"

# Remove the default on-disk artifact cache (the -cache-dir default).
clean-cache:
	rm -rf "$${XDG_CACHE_HOME:-$$HOME/.cache}/thesaurus/artifacts"

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/line ./internal/diffenc ./internal/lsh

# Machine-readable hot-path benchmark trajectory (ns/access, allocs/access,
# MB/s per design point). Regenerate after performance work and commit the
# result; docs/performance.md describes the format.
bench-json:
	$(GO) run ./cmd/thesaurus -benchjson BENCH_hotpath.json

# Re-measure the hot paths and fail if any kernel or hot-path row regresses
# more than 15% ns/op (or grows allocs at all) against the committed
# snapshot. Each run is also appended to results/bench_history.jsonl so the
# performance trajectory accumulates machine-readably.
bench-diff:
	$(GO) run ./cmd/thesaurus -benchdiff BENCH_hotpath.json \
		-benchhistory results/bench_history.jsonl
