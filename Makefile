# Repository verification targets. `make ci` is the gate: vet, build,
# the full test suite, and a race-detector pass over the packages that
# own the campaign worker pools.

GO ?= go

.PHONY: ci vet build test race bench

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The worker pools live in harness (RunMatrix, ParMap) and are driven by
# the experiments package; -race over their tests catches data races in
# the parallel campaign paths. Short trace lengths keep this a smoke
# pass, not a full campaign.
race:
	$(GO) test -race -count=1 ./internal/harness ./internal/experiments

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/line ./internal/diffenc ./internal/lsh
