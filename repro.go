// Package repro is a from-scratch reproduction of "Thesaurus: Efficient
// Cache Compression via Dynamic Clustering" (Ghasemazar, Nair, Lis;
// ASPLOS 2020) as a production-quality Go library.
//
// Thesaurus compresses a last-level cache by clustering cachelines that
// are similar — not merely identical — using a hardware-friendly
// locality-sensitive hash, and storing each cluster member as a
// byte-granular diff against the cluster's base line (the "clusteroid").
//
// This package is the public facade over the implementation packages:
//
//   - the Thesaurus compressed cache itself (Cache, Config);
//   - the locality-sensitive hashing building block (LSH, LSHConfig);
//   - the compression encodings (Encode/Decode, base+diff and friends);
//   - the comparison baselines (conventional, BΔI, Dedup, ideal models);
//   - the cache-hierarchy simulator and synthetic SPEC CPU 2017-like
//     workload profiles used to reproduce the paper's evaluation.
//
// # Quick start
//
//	mem := repro.NewMemory()
//	cache := repro.MustNewCache(repro.DefaultConfig(), mem)
//	mem.Poke(0x1000, someLine)          // populate backing memory
//	data, hit := cache.Read(0x1000)     // miss: fills, clusters, compresses
//	fp := cache.Footprint()
//	fmt.Println(fp.CompressionRatio())
//
// The cmd/thesaurus binary regenerates every table and figure of the
// paper; see DESIGN.md for the experiment index and EXPERIMENTS.md for
// measured-versus-published results.
package repro

import (
	"repro/internal/bdi"
	"repro/internal/bdicache"
	"repro/internal/dedupcache"
	"repro/internal/diffenc"
	"repro/internal/dram"
	"repro/internal/ideal"
	"repro/internal/line"
	"repro/internal/llc"
	"repro/internal/lsh"
	"repro/internal/memory"
	"repro/internal/sim"
	"repro/internal/thesaurus"
	"repro/internal/trace"
	"repro/internal/uncomp"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// Cachelines and memory

// Line is a 64-byte memory block: the unit of caching and compression.
type Line = line.Line

// Addr is a physical byte address; caches operate on line-aligned
// addresses.
type Addr = line.Addr

// LineSize is the cacheline size in bytes.
const LineSize = line.Size

// DiffBytes returns the number of byte positions at which two lines
// differ — the distance metric underlying the whole design.
func DiffBytes(a, b *Line) int { return line.DiffBytes(a, b) }

// Memory is the DRAM backing store behind an LLC.
type Memory = memory.Store

// NewMemory returns an empty backing store; unpopulated lines read as
// zero.
func NewMemory() *Memory { return memory.NewStore() }

// ---------------------------------------------------------------------------
// Locality-sensitive hashing (§4)

// LSH computes sign-quantized sparse-random-projection fingerprints of
// cachelines: similar lines collide with high probability.
type LSH = lsh.Hasher

// LSHConfig parameterizes the hash: fingerprint width, projection
// sparsity, and the matrix seed.
type LSHConfig = lsh.Config

// Fingerprint is an LSH cluster ID.
type Fingerprint = lsh.Fingerprint

// DefaultLSHConfig returns the paper's evaluation setting: 12-bit
// fingerprints, 6 non-zero coefficients per row.
func DefaultLSHConfig() LSHConfig { return lsh.DefaultConfig() }

// NewLSH builds a hasher.
func NewLSH(cfg LSHConfig) (*LSH, error) { return lsh.New(cfg) }

// ---------------------------------------------------------------------------
// Compression encodings (§5.1)

// Format identifies a Thesaurus data encoding (raw, base+diff, 0+diff,
// base-only, all-zero).
type Format = diffenc.Format

// The five encodings of §5.1.
const (
	FormatRaw      = diffenc.FormatRaw
	FormatBaseDiff = diffenc.FormatBaseDiff
	FormatZeroDiff = diffenc.FormatZeroDiff
	FormatBaseOnly = diffenc.FormatBaseOnly
	FormatAllZero  = diffenc.FormatAllZero
)

// Encoded is one compressed (or raw) data-array entry.
type Encoded = diffenc.Encoded

// Encode compresses l against base (which may be nil), choosing the
// smallest applicable encoding.
func Encode(l, base *Line) Encoded { return diffenc.Encode(l, base) }

// Decode reconstructs the original line from an encoding and its base.
func Decode(e Encoded, base *Line) (Line, error) { return diffenc.Decode(e, base) }

// CompressBDI applies Base-Delta-Immediate compression (the intra-line
// baseline of §2.2) and returns the encoded block.
func CompressBDI(l *Line) bdi.Encoded { return bdi.Compress(l) }

// ---------------------------------------------------------------------------
// The Thesaurus cache (§5)

// Cache is a Thesaurus last-level cache: decoupled tag and data arrays,
// online LSH clustering, a base table of clusteroids with an LLC-side
// base cache, and best-of-n data victim selection.
type Cache = thesaurus.Cache

// Config sizes a Thesaurus cache; DefaultConfig reproduces the paper's
// Table 2 iso-silicon design point.
type Config = thesaurus.Config

// DefaultConfig returns the Table 2 configuration.
func DefaultConfig() Config { return thesaurus.DefaultConfig() }

// NewCache builds a Thesaurus LLC over mem.
func NewCache(cfg Config, mem *Memory) (*Cache, error) { return thesaurus.New(cfg, mem) }

// MustNewCache is NewCache but panics on configuration errors.
func MustNewCache(cfg Config, mem *Memory) *Cache { return thesaurus.MustNew(cfg, mem) }

// ---------------------------------------------------------------------------
// Baselines and the common LLC contract

// LLC is the interface every cache design implements; the simulator and
// harness are design-agnostic.
type LLC = llc.Cache

// Footprint is an occupancy sample (the Fig. 13a metric).
type Footprint = llc.Footprint

// LLCStats counts LLC-level events.
type LLCStats = llc.Stats

// NewConventional builds an uncompressed set-associative LLC of the given
// size (the evaluation baseline).
func NewConventional(name string, sizeBytes int, mem *Memory) LLC {
	cfg := uncomp.DefaultConfig()
	cfg.SizeBytes = sizeBytes
	return uncomp.New(name, cfg, mem)
}

// NewBDICache builds the BΔI-compressed baseline LLC (Table 2 geometry).
func NewBDICache(mem *Memory) (LLC, error) { return bdicache.New(bdicache.DefaultConfig(), mem) }

// NewDedupCache builds the Dedup baseline LLC (Table 2 geometry).
func NewDedupCache(mem *Memory) (LLC, error) { return dedupcache.New(dedupcache.DefaultConfig(), mem) }

// NewIdealCache builds the online Ideal-Diff model (the "Ideal" series of
// Fig. 13).
func NewIdealCache(mem *Memory) LLC { return ideal.New(ideal.DefaultConfig(), mem) }

// ---------------------------------------------------------------------------
// Simulation substrate

// Access is one core-level memory access of a trace.
type Access = trace.Access

// TraceSource produces a stream of accesses.
type TraceSource = trace.Source

// SystemConfig describes the simulated system (Table 1).
type SystemConfig = sim.SystemConfig

// DefaultSystem returns the Table 1 configuration.
func DefaultSystem() SystemConfig { return sim.DefaultSystem() }

// Recorded is the L1/L2-filtered LLC event stream of a workload.
type Recorded = sim.Recorded

// Record filters a core-level trace through the private cache levels.
// img must hold the workload's initial memory image.
func Record(src TraceSource, sys SystemConfig, img *Memory) *Recorded {
	return sim.Record(src, sys, img)
}

// DRAMConfig describes an open-page DDR3-class memory system; attach a
// model built from it to a backing store to replace the flat memory
// latency with row-buffer-aware timing.
type DRAMConfig = dram.Config

// DDR3_1066 returns the timing of the paper's DDR3-1066 part.
func DDR3_1066() DRAMConfig { return dram.DDR3_1066() }

// NewDRAM builds an open-page DRAM timing model; attach it with
// (*Memory).AttachLatencyModel.
func NewDRAM(cfg DRAMConfig) *dram.Model { return dram.New(cfg) }

// ReplayOptions tunes a replay run.
type ReplayOptions = sim.ReplayOptions

// Result summarizes one design × workload replay (MPKI, IPC, compression).
type Result = sim.Result

// Replay drives a recorded event stream into an LLC over its backing
// store and returns the metrics.
func Replay(c LLC, rec *Recorded, st *Memory, sys SystemConfig, opt ReplayOptions) (Result, error) {
	return sim.Replay(c, rec, st, sys, opt)
}

// ---------------------------------------------------------------------------
// Workloads

// Profile is one synthetic SPEC CPU 2017-like workload.
type Profile = workload.Profile

// Profiles returns all 22 benchmark profiles.
func Profiles() []Profile { return workload.Profiles() }

// ProfileByName returns the named profile ("mcf", "roms", ...).
func ProfileByName(name string) (Profile, error) { return workload.ProfileByName(name) }
