// Allocation-regression tests pinning the zero-allocation contract of the
// steady-state access paths (docs/performance.md): once a working set is
// resident and the per-cache scratch buffers have converged, Read/Write
// hits, LSH fingerprinting, and diff encode/decode round trips must not
// touch the heap. testing.AllocsPerRun makes the contract mechanical — a
// regression fails this test instead of showing up only as a slowly
// degrading campaign wall time.
package repro_test

import (
	"testing"

	"repro/internal/bdicache"
	"repro/internal/diffenc"
	"repro/internal/line"
	"repro/internal/lsh"
	"repro/internal/memory"
	"repro/internal/thesaurus"
)

// residentLines is the steady-state working set: small enough that the
// default Thesaurus geometry (32768 tags, 11700 data entries) holds every
// line without data-array evictions, large enough to spread across sets.
const residentLines = 512

// residentLine builds line i at version v: a shared byte ramp with the
// index in the low bytes and the version in one more, so lines cluster
// under LSH, diffs stay small and size-stable across versions, and no two
// lines are identical.
func residentLine(i int, v uint32) line.Line {
	var l line.Line
	for j := range l {
		l[j] = byte(j)
	}
	l[0] = byte(i)
	l[1] = byte(i >> 8)
	l[2] = byte(v)
	return l
}

func addrOf(i int) line.Addr { return line.Addr(i * line.Size) }

// warmThesaurus installs the working set and runs one extra write pass at
// each version so every slot's delta-buffer capacity has converged.
func warmThesaurus(tb testing.TB) *thesaurus.Cache {
	tb.Helper()
	c := thesaurus.MustNew(thesaurus.DefaultConfig(), memory.NewStore())
	for v := uint32(0); v < 2; v++ {
		for i := 0; i < residentLines; i++ {
			c.Write(addrOf(i), residentLine(i, v))
		}
	}
	return c
}

func TestThesaurusReadHitAllocFree(t *testing.T) {
	c := warmThesaurus(t)
	allocs := testing.AllocsPerRun(50, func() {
		for i := 0; i < residentLines; i++ {
			if _, hit := c.Read(addrOf(i)); !hit {
				t.Fatal("steady-state read missed")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("Read hit allocates: %.2f allocs per %d reads", allocs, residentLines)
	}
}

func TestThesaurusWriteHitAllocFree(t *testing.T) {
	c := warmThesaurus(t)
	v := uint32(0)
	allocs := testing.AllocsPerRun(50, func() {
		v ^= 1 // alternate content so re-encoding genuinely runs
		for i := 0; i < residentLines; i++ {
			if !c.Write(addrOf(i), residentLine(i, v)) {
				t.Fatal("steady-state write missed")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("Write hit allocates: %.2f allocs per %d writes", allocs, residentLines)
	}
}

func TestThesaurusUnchangedWriteHitAllocFree(t *testing.T) {
	// Re-writes of identical content take the memoized-fingerprint path
	// (thesaurus.Cache.Write); it too must stay allocation-free.
	c := warmThesaurus(t)
	allocs := testing.AllocsPerRun(50, func() {
		for i := 0; i < residentLines; i++ {
			if !c.Write(addrOf(i), residentLine(i, 1)) {
				t.Fatal("steady-state write missed")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("unchanged Write hit allocates: %.2f allocs per %d writes", allocs, residentLines)
	}
}

func TestBDICacheHitAllocFree(t *testing.T) {
	c := bdicache.MustNew(bdicache.DefaultConfig(), memory.NewStore())
	for v := uint32(0); v < 2; v++ {
		for i := 0; i < residentLines; i++ {
			c.Write(addrOf(i), residentLine(i, v))
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		for i := 0; i < residentLines; i++ {
			if _, hit := c.Read(addrOf(i)); !hit {
				t.Fatal("steady-state read missed")
			}
			if !c.Write(addrOf(i), residentLine(i, 0)) {
				t.Fatal("steady-state write missed")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("BDI hit path allocates: %.2f allocs per %d accesses", allocs, 2*residentLines)
	}
}

func TestBaseTablePooledCycleAllocFree(t *testing.T) {
	// The sweep lifecycle: construct a 2^20-entry base table and release it
	// back to the per-size pool. After one warm-up cycle (which may seed the
	// pool) the steady state must be allocation-free — an epoch bump, not a
	// multi-megabyte make-and-zero per sweep point.
	mem := memory.NewStore()
	thesaurus.NewBaseTable(20, mem).Release()
	allocs := testing.AllocsPerRun(100, func() {
		thesaurus.NewBaseTable(20, mem).Release()
	})
	if allocs != 0 {
		t.Fatalf("pooled base-table cycle allocates: %.2f allocs/op", allocs)
	}
}

func TestLSHFingerprintAllocFree(t *testing.T) {
	h := lsh.MustNew(lsh.DefaultConfig())
	l := residentLine(7, 0)
	var sink lsh.Fingerprint
	allocs := testing.AllocsPerRun(1000, func() {
		sink ^= h.Fingerprint(&l)
	})
	if allocs != 0 {
		t.Fatalf("Fingerprint allocates: %.2f allocs/op", allocs)
	}
	proj := make([]int, 0, h.Bits())
	allocs = testing.AllocsPerRun(1000, func() {
		proj = h.AppendProject(proj[:0], &l)
	})
	if allocs != 0 {
		t.Fatalf("AppendProject with capacity allocates: %.2f allocs/op", allocs)
	}
}

func TestDiffencRoundTripAllocFree(t *testing.T) {
	base := residentLine(3, 0)
	l := base
	l[5] += 9
	l[41] -= 3
	var enc diffenc.Encoded
	var out line.Line
	diffenc.EncodeInto(&enc, &l, &base) // converge Deltas capacity
	allocs := testing.AllocsPerRun(1000, func() {
		diffenc.EncodeInto(&enc, &l, &base)
		if err := diffenc.DecodeInto(&out, &enc, &base); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("diffenc round trip allocates: %.2f allocs/op", allocs)
	}
	if out != l {
		t.Fatal("round trip corrupted the line")
	}
}

func TestThesaurusEvictionCycleAllocFree(t *testing.T) {
	// Steady-state misses are as hot as hits: a working set 4× the tag
	// capacity cycles through a deliberately small geometry so every pass
	// evicts and re-installs most lines — tag victim selection, best-of-n
	// data victim sampling, startmap churn, and re-encoding included.
	// After a warm-up pass has populated the backing store's pages and
	// converged every scratch buffer, the whole eviction cycle must stay
	// off the heap.
	cfg := thesaurus.DefaultConfig()
	cfg.TagEntries = 512
	cfg.TagWays = 8
	cfg.DataSets = 32
	cfg.BaseCacheSets = 8
	c := thesaurus.MustNew(cfg, memory.NewStore())
	const cycling = 4 * 512 // 4× the tag capacity
	for v := uint32(0); v < 2; v++ {
		for i := 0; i < cycling; i++ {
			c.Write(addrOf(i), residentLine(i, v))
		}
	}
	v := uint32(0)
	allocs := testing.AllocsPerRun(20, func() {
		v ^= 1
		for i := 0; i < cycling; i++ {
			c.Write(addrOf(i), residentLine(i, v))
			c.Read(addrOf(i))
		}
	})
	if allocs != 0 {
		t.Fatalf("eviction cycle allocates: %.2f allocs per %d accesses", allocs, 2*cycling)
	}
	if s := c.Stats(); s.Writes == s.WriteHits || s.Writebacks == 0 {
		t.Fatalf("cycle did not evict (writes=%d hits=%d writebacks=%d); geometry too large for the pin",
			s.Writes, s.WriteHits, s.Writebacks)
	}
}

func TestThesaurusWriteDrainAllocFree(t *testing.T) {
	// The batched re-clustering path (§5.4.2): writes park in the write
	// buffer and replay through writeNow on a capacity drain or when state
	// is next observed. Both drain triggers — and the buffered bookkeeping
	// around them — must stay allocation-free in steady state.
	c := warmThesaurus(t)
	depth := thesaurus.DefaultWriteBufferDepth
	before := c.WriteBuffer()
	allocs := testing.AllocsPerRun(50, func() {
		// 2×depth writes force two capacity drains mid-loop…
		for i := 0; i < 2*depth; i++ {
			c.Write(addrOf(i), residentLine(i, uint32(i)&1))
		}
		// …and half a buffer more leaves residue for an observation drain.
		for i := 0; i < depth/2; i++ {
			c.Write(addrOf(i), residentLine(i, 0))
		}
		if _, hit := c.Read(addrOf(0)); !hit {
			t.Fatal("steady-state read missed")
		}
	})
	if allocs != 0 {
		t.Fatalf("write drain allocates: %.2f allocs per batch", allocs)
	}
	after := c.WriteBuffer()
	if after.CapacityDrains == before.CapacityDrains || after.ObservationDrains == before.ObservationDrains {
		t.Fatalf("drain triggers not exercised: %+v -> %+v", before, after)
	}
}
