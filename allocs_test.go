// Allocation-regression tests pinning the zero-allocation contract of the
// steady-state access paths (docs/performance.md): once a working set is
// resident and the per-cache scratch buffers have converged, Read/Write
// hits, LSH fingerprinting, and diff encode/decode round trips must not
// touch the heap. testing.AllocsPerRun makes the contract mechanical — a
// regression fails this test instead of showing up only as a slowly
// degrading campaign wall time.
package repro_test

import (
	"testing"

	"repro/internal/bdicache"
	"repro/internal/diffenc"
	"repro/internal/line"
	"repro/internal/lsh"
	"repro/internal/memory"
	"repro/internal/thesaurus"
)

// residentLines is the steady-state working set: small enough that the
// default Thesaurus geometry (32768 tags, 11700 data entries) holds every
// line without data-array evictions, large enough to spread across sets.
const residentLines = 512

// residentLine builds line i at version v: a shared byte ramp with the
// index in the low bytes and the version in one more, so lines cluster
// under LSH, diffs stay small and size-stable across versions, and no two
// lines are identical.
func residentLine(i int, v uint32) line.Line {
	var l line.Line
	for j := range l {
		l[j] = byte(j)
	}
	l[0] = byte(i)
	l[1] = byte(i >> 8)
	l[2] = byte(v)
	return l
}

func addrOf(i int) line.Addr { return line.Addr(i * line.Size) }

// warmThesaurus installs the working set and runs one extra write pass at
// each version so every slot's delta-buffer capacity has converged.
func warmThesaurus(tb testing.TB) *thesaurus.Cache {
	tb.Helper()
	c := thesaurus.MustNew(thesaurus.DefaultConfig(), memory.NewStore())
	for v := uint32(0); v < 2; v++ {
		for i := 0; i < residentLines; i++ {
			c.Write(addrOf(i), residentLine(i, v))
		}
	}
	return c
}

func TestThesaurusReadHitAllocFree(t *testing.T) {
	c := warmThesaurus(t)
	allocs := testing.AllocsPerRun(50, func() {
		for i := 0; i < residentLines; i++ {
			if _, hit := c.Read(addrOf(i)); !hit {
				t.Fatal("steady-state read missed")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("Read hit allocates: %.2f allocs per %d reads", allocs, residentLines)
	}
}

func TestThesaurusWriteHitAllocFree(t *testing.T) {
	c := warmThesaurus(t)
	v := uint32(0)
	allocs := testing.AllocsPerRun(50, func() {
		v ^= 1 // alternate content so re-encoding genuinely runs
		for i := 0; i < residentLines; i++ {
			if !c.Write(addrOf(i), residentLine(i, v)) {
				t.Fatal("steady-state write missed")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("Write hit allocates: %.2f allocs per %d writes", allocs, residentLines)
	}
}

func TestThesaurusUnchangedWriteHitAllocFree(t *testing.T) {
	// Re-writes of identical content take the memoized-fingerprint path
	// (thesaurus.Cache.Write); it too must stay allocation-free.
	c := warmThesaurus(t)
	allocs := testing.AllocsPerRun(50, func() {
		for i := 0; i < residentLines; i++ {
			if !c.Write(addrOf(i), residentLine(i, 1)) {
				t.Fatal("steady-state write missed")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("unchanged Write hit allocates: %.2f allocs per %d writes", allocs, residentLines)
	}
}

func TestBDICacheHitAllocFree(t *testing.T) {
	c := bdicache.MustNew(bdicache.DefaultConfig(), memory.NewStore())
	for v := uint32(0); v < 2; v++ {
		for i := 0; i < residentLines; i++ {
			c.Write(addrOf(i), residentLine(i, v))
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		for i := 0; i < residentLines; i++ {
			if _, hit := c.Read(addrOf(i)); !hit {
				t.Fatal("steady-state read missed")
			}
			if !c.Write(addrOf(i), residentLine(i, 0)) {
				t.Fatal("steady-state write missed")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("BDI hit path allocates: %.2f allocs per %d accesses", allocs, 2*residentLines)
	}
}

func TestBaseTablePooledCycleAllocFree(t *testing.T) {
	// The sweep lifecycle: construct a 2^20-entry base table and release it
	// back to the per-size pool. After one warm-up cycle (which may seed the
	// pool) the steady state must be allocation-free — an epoch bump, not a
	// multi-megabyte make-and-zero per sweep point.
	mem := memory.NewStore()
	thesaurus.NewBaseTable(20, mem).Release()
	allocs := testing.AllocsPerRun(100, func() {
		thesaurus.NewBaseTable(20, mem).Release()
	})
	if allocs != 0 {
		t.Fatalf("pooled base-table cycle allocates: %.2f allocs/op", allocs)
	}
}

func TestLSHFingerprintAllocFree(t *testing.T) {
	h := lsh.MustNew(lsh.DefaultConfig())
	l := residentLine(7, 0)
	var sink lsh.Fingerprint
	allocs := testing.AllocsPerRun(1000, func() {
		sink ^= h.Fingerprint(&l)
	})
	if allocs != 0 {
		t.Fatalf("Fingerprint allocates: %.2f allocs/op", allocs)
	}
	proj := make([]int, 0, h.Bits())
	allocs = testing.AllocsPerRun(1000, func() {
		proj = h.AppendProject(proj[:0], &l)
	})
	if allocs != 0 {
		t.Fatalf("AppendProject with capacity allocates: %.2f allocs/op", allocs)
	}
}

func TestDiffencRoundTripAllocFree(t *testing.T) {
	base := residentLine(3, 0)
	l := base
	l[5] += 9
	l[41] -= 3
	var enc diffenc.Encoded
	var out line.Line
	diffenc.EncodeInto(&enc, &l, &base) // converge Deltas capacity
	allocs := testing.AllocsPerRun(1000, func() {
		diffenc.EncodeInto(&enc, &l, &base)
		if err := diffenc.DecodeInto(&out, &enc, &base); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("diffenc round trip allocates: %.2f allocs/op", allocs)
	}
	if out != l {
		t.Fatal("round trip corrupted the line")
	}
}
